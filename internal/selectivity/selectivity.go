// Package selectivity estimates rewritten-query selectivity from the
// mediator's offline sample, per Section 5.4 of the paper:
//
//	EstSel(Q) = SmplSel(Q) × SmplRatio(R) × PerInc(R)
//
// where SmplSel is the query's cardinality on the sample, SmplRatio scales
// the sample to the full database, and PerInc is the fraction of incomplete
// tuples — because a rewritten query's useful yield is the incomplete
// tuples it retrieves (complete ones were either certain answers already or
// certain non-answers).
//
// Sample counts are pure functions of (sample, query), and planning —
// rewrite scoring, join-pair estimation, greedy join ordering — re-scores
// the same query fingerprints over and over, so SampleSelectivity memoizes
// per query key in a bounded cache. ReplaceSample is the invalidation hook:
// swapping the sample (a re-probe of a drifted source) purges every count.
package selectivity

import (
	"fmt"
	"sync"

	"qpiad/internal/qcache"
	"qpiad/internal/relation"
)

// memoCapacity bounds the per-estimator count memo. Plans touch at most a
// few hundred distinct rewrites per query; 4096 entries absorb many
// concurrent plans while keeping a cold estimator small.
const memoCapacity = 4096

// Estimator scores queries against a sample. Safe for concurrent use:
// lookups share a read lock, and ReplaceSample swaps the sample atomically
// with respect to in-flight estimates.
type Estimator struct {
	mu     sync.RWMutex
	sample *relation.Relation
	ratio  float64
	perInc float64
	// memo caches SampleSelectivity counts by query fingerprint. Counts are
	// pure over an immutable sample, so entries never go stale: ReplaceSample
	// swaps in a fresh memo together with the sample, and a lookup racing the
	// swap can only populate the superseded memo it captured with the
	// superseded sample — never mix the two.
	memo *qcache.Cache
}

// New builds an estimator. ratio is SmplRatio(R) ≥ 0 and perInc is
// PerInc(R) ∈ [0, 1].
func New(sample *relation.Relation, ratio, perInc float64) (*Estimator, error) {
	if err := validate(sample, ratio, perInc); err != nil {
		return nil, err
	}
	return &Estimator{
		sample: sample,
		ratio:  ratio,
		perInc: perInc,
		memo:   qcache.New(qcache.Config{Capacity: memoCapacity}),
	}, nil
}

// validate checks the estimator invariants shared by New and ReplaceSample.
func validate(sample *relation.Relation, ratio, perInc float64) error {
	if sample == nil {
		return fmt.Errorf("selectivity: nil sample")
	}
	if ratio < 0 {
		return fmt.Errorf("selectivity: negative ratio %v", ratio)
	}
	if perInc < 0 || perInc > 1 {
		return fmt.Errorf("selectivity: PerInc %v outside [0,1]", perInc)
	}
	return nil
}

// ReplaceSample swaps in a fresh sample (with its new ratio and PerInc) and
// invalidates every memoized count — the hook a knowledge re-probe calls so
// estimates never reflect a sample that is no longer backing them.
func (e *Estimator) ReplaceSample(sample *relation.Relation, ratio, perInc float64) error {
	if err := validate(sample, ratio, perInc); err != nil {
		return err
	}
	e.mu.Lock()
	e.sample = sample
	e.ratio = ratio
	e.perInc = perInc
	e.memo = qcache.New(qcache.Config{Capacity: memoCapacity})
	e.mu.Unlock()
	return nil
}

// Sample returns the backing sample relation.
func (e *Estimator) Sample() *relation.Relation {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.sample
}

// Ratio returns SmplRatio(R).
func (e *Estimator) Ratio() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ratio
}

// PerInc returns PerInc(R).
func (e *Estimator) PerInc() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.perInc
}

// MemoStats snapshots the count-memo counters (hits, misses, evictions).
func (e *Estimator) MemoStats() qcache.Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.memo.Stats()
}

// SampleSelectivity returns SmplSel(Q): the cardinality of Q on the sample,
// memoized per query fingerprint.
func (e *Estimator) SampleSelectivity(q relation.Query) int {
	n, _, _ := e.sampleCount(q)
	return n
}

// EstSel returns the estimated number of relevant incomplete tuples the
// query would retrieve from the full database.
func (e *Estimator) EstSel(q relation.Query) float64 {
	n, ratio, perInc := e.sampleCount(q)
	return float64(n) * ratio * perInc
}

// EstSelComplete returns the estimated full-database cardinality of Q
// without the incompleteness discount (used where the expected total result
// size matters, e.g. join-pair cost estimates for complete queries).
func (e *Estimator) EstSelComplete(q relation.Query) float64 {
	n, ratio, _ := e.sampleCount(q)
	return float64(n) * ratio
}

// sampleCount returns the memoized count together with the ratio and PerInc
// of the sample it was counted on, captured under one lock so a concurrent
// ReplaceSample can never mix statistics from two samples in one estimate.
func (e *Estimator) sampleCount(q relation.Query) (n int, ratio, perInc float64) {
	e.mu.RLock()
	smpl, memo := e.sample, e.memo
	ratio, perInc = e.ratio, e.perInc
	e.mu.RUnlock()
	key := q.Key()
	if v, ok := memo.Get(key); ok {
		return v.(int), ratio, perInc
	}
	n = smpl.Count(q)
	memo.Put(key, n)
	return n, ratio, perInc
}
