// Package assocrule implements association-rule based missing-value
// prediction in the style of Wu, Wun & Chou (HIS 2004), the baseline QPIAD's
// experiments compare AFD-enhanced classifiers against (Section 6.5).
//
// Rules have the form {Ai=vi, ...} ⇒ (A=v) and are mined with minimum
// support and confidence over a sample. Prediction for a tuple with a null
// on A collects all rules whose antecedents the tuple satisfies and
// combines them by confidence-weighted voting. Because rules exist only at
// the attribute-VALUE level, small samples yield sparse rule sets — the
// failure mode the paper reports ("association rules ... fail to learn
// from small samples").
package assocrule

import (
	"fmt"
	"sort"
	"strings"

	"qpiad/internal/nbc"
	"qpiad/internal/relation"
)

// Item is one attribute=value antecedent element.
type Item struct {
	Attr  string
	Value relation.Value
}

// String renders "attr=value".
func (i Item) String() string { return i.Attr + "=" + i.Value.String() }

// Rule is an association rule antecedent ⇒ (TargetAttr = Consequent).
type Rule struct {
	Antecedent []Item
	TargetAttr string
	Consequent relation.Value
	Support    int     // tuples matching antecedent ∧ consequent
	Confidence float64 // Support / tuples matching antecedent
}

// String renders the rule.
func (r Rule) String() string {
	parts := make([]string, len(r.Antecedent))
	for i, it := range r.Antecedent {
		parts[i] = it.String()
	}
	return fmt.Sprintf("{%s} => %s=%s (sup=%d conf=%.3f)",
		strings.Join(parts, ","), r.TargetAttr, r.Consequent, r.Support, r.Confidence)
}

// Config controls mining.
type Config struct {
	// MinSupport is the minimum absolute antecedent∧consequent count.
	// Default 3.
	MinSupport int
	// MinConfidence is the minimum rule confidence. Default 0.5.
	MinConfidence float64
	// MaxAntecedent bounds antecedent size. Default 2.
	MaxAntecedent int
}

func (c Config) withDefaults() Config {
	if c.MinSupport == 0 {
		c.MinSupport = 3
	}
	if c.MinConfidence == 0 {
		c.MinConfidence = 0.5
	}
	if c.MaxAntecedent == 0 {
		c.MaxAntecedent = 2
	}
	return c
}

// Predictor predicts missing values of one target attribute from mined
// rules.
type Predictor struct {
	Target string
	Rules  []Rule

	classes []relation.Value
	prior   []float64
}

// Train mines rules predicting target from every other attribute of the
// sample.
func Train(sample *relation.Relation, target string, cfg Config) (*Predictor, error) {
	cfg = cfg.withDefaults()
	s := sample.Schema
	tcol, ok := s.Index(target)
	if !ok {
		return nil, fmt.Errorf("assocrule: no target attribute %q", target)
	}
	p := &Predictor{Target: target}

	// Class domain and priors.
	classIdx := make(map[string]int)
	var classCount []int
	total := 0
	for _, t := range sample.Tuples() {
		v := t[tcol]
		if v.IsNull() {
			continue
		}
		total++
		if _, ok := classIdx[v.Key()]; !ok {
			classIdx[v.Key()] = len(p.classes)
			p.classes = append(p.classes, v)
			classCount = append(classCount, 0)
		}
		classCount[classIdx[v.Key()]]++
	}
	if total == 0 {
		return nil, fmt.Errorf("assocrule: no non-null %q values in sample", target)
	}
	p.prior = make([]float64, len(p.classes))
	for i, c := range classCount {
		p.prior[i] = float64(c) / float64(total)
	}

	// Candidate antecedents: single items and (optionally) pairs over the
	// non-target attributes.
	type key = string
	count := make(map[key]int)          // antecedent occurrences
	hit := make(map[key]map[string]int) // antecedent -> class key -> count
	repr := make(map[key][]Item)        // antecedent key -> items
	consVal := make(map[string]relation.Value)

	cols := make([]int, 0, s.Len()-1)
	for i := 0; i < s.Len(); i++ {
		if i != tcol {
			cols = append(cols, i)
		}
	}
	for _, t := range sample.Tuples() {
		cv := t[tcol]
		var cKey string
		if !cv.IsNull() {
			cKey = cv.Key()
			consVal[cKey] = cv
		}
		record := func(items []Item) {
			k := itemsKey(items)
			count[k]++
			if _, ok := repr[k]; !ok {
				cp := make([]Item, len(items))
				copy(cp, items)
				repr[k] = cp
			}
			if cKey != "" {
				m := hit[k]
				if m == nil {
					m = make(map[string]int)
					hit[k] = m
				}
				m[cKey]++
			}
		}
		for ai, a := range cols {
			va := t[a]
			if va.IsNull() {
				continue
			}
			itemA := Item{s.Attr(a).Name, va}
			record([]Item{itemA})
			if cfg.MaxAntecedent >= 2 {
				for _, b := range cols[ai+1:] {
					vb := t[b]
					if vb.IsNull() {
						continue
					}
					record([]Item{itemA, {s.Attr(b).Name, vb}})
				}
			}
		}
	}
	for k, classHits := range hit {
		for cKey, sup := range classHits {
			if sup < cfg.MinSupport {
				continue
			}
			conf := float64(sup) / float64(count[k])
			if conf < cfg.MinConfidence {
				continue
			}
			p.Rules = append(p.Rules, Rule{
				Antecedent: repr[k],
				TargetAttr: target,
				Consequent: consVal[cKey],
				Support:    sup,
				Confidence: conf,
			})
		}
	}
	sort.Slice(p.Rules, func(i, j int) bool {
		if p.Rules[i].Confidence != p.Rules[j].Confidence {
			return p.Rules[i].Confidence > p.Rules[j].Confidence
		}
		return p.Rules[i].Support > p.Rules[j].Support
	})
	return p, nil
}

func itemsKey(items []Item) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = it.Attr + "\x1e" + it.Value.Key()
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x1f")
}

// Predict returns a distribution over the target's values for tuple t:
// confidence-weighted votes of the matching rules, falling back to the
// training prior when no rule fires (the sparse-sample failure mode).
func (p *Predictor) Predict(s *relation.Schema, t relation.Tuple) nbc.Distribution {
	weights := make([]float64, len(p.classes))
	idx := make(map[string]int, len(p.classes))
	for i, c := range p.classes {
		idx[c.Key()] = i
	}
	fired := false
	for _, r := range p.Rules {
		if !p.antecedentMatches(r, s, t) {
			continue
		}
		if i, ok := idx[r.Consequent.Key()]; ok {
			weights[i] += r.Confidence
			fired = true
		}
	}
	if !fired {
		copy(weights, p.prior)
	}
	return nbc.NewDistribution(p.classes, weights)
}

func (p *Predictor) antecedentMatches(r Rule, s *relation.Schema, t relation.Tuple) bool {
	for _, it := range r.Antecedent {
		i, ok := s.Index(it.Attr)
		if !ok || !t[i].Equal(it.Value) {
			return false
		}
	}
	return true
}
