package assocrule

import (
	"math"
	"testing"

	"qpiad/internal/relation"
)

func carsRel() *relation.Relation {
	s := relation.MustSchema(
		relation.Attribute{Name: "make", Kind: relation.KindString},
		relation.Attribute{Name: "model", Kind: relation.KindString},
		relation.Attribute{Name: "body_style", Kind: relation.KindString},
	)
	r := relation.New("cars", s)
	add := func(n int, make, model, style string) {
		for i := 0; i < n; i++ {
			r.MustInsert(relation.Tuple{relation.String(make), relation.String(model), relation.String(style)})
		}
	}
	add(18, "BMW", "Z4", "Convt")
	add(2, "BMW", "Z4", "Coupe")
	add(10, "Honda", "Civic", "Sedan")
	return r
}

func TestTrainMinesExpectedRules(t *testing.T) {
	p, err := Train(carsRel(), "body_style", Config{MinSupport: 3, MinConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range p.Rules {
		if len(r.Antecedent) == 1 &&
			r.Antecedent[0].Attr == "model" &&
			r.Antecedent[0].Value.Str() == "Z4" &&
			r.Consequent.Str() == "Convt" {
			found = true
			if math.Abs(r.Confidence-0.9) > 1e-9 {
				t.Errorf("conf(Z4=>Convt) = %v, want 0.9", r.Confidence)
			}
			if r.Support != 18 {
				t.Errorf("support = %d, want 18", r.Support)
			}
		}
	}
	if !found {
		t.Fatalf("Z4=>Convt rule not mined; rules: %v", p.Rules)
	}
	// Low-confidence Z4=>Coupe (0.1) must be filtered.
	for _, r := range p.Rules {
		if r.Consequent.Str() == "Coupe" {
			t.Errorf("low-confidence rule should be filtered: %v", r)
		}
	}
}

func TestPredictVotes(t *testing.T) {
	r := carsRel()
	p, err := Train(r, "body_style", Config{MinSupport: 3, MinConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.Tuple{relation.String("BMW"), relation.String("Z4"), relation.Null()}
	d := p.Predict(r.Schema, tu)
	top, _, ok := d.Top()
	if !ok || top.Str() != "Convt" {
		t.Errorf("predicted %v", top)
	}
}

func TestPredictFallsBackToPrior(t *testing.T) {
	r := carsRel()
	p, err := Train(r, "body_style", Config{MinSupport: 3, MinConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// A tuple matching no rule antecedent: unseen make & model.
	tu := relation.Tuple{relation.String("Tesla"), relation.String("ModelS"), relation.Null()}
	d := p.Predict(r.Schema, tu)
	// Prior: Convt 18/30, Sedan 10/30, Coupe 2/30.
	if got := d.Prob(relation.String("Convt")); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("prior fallback P(Convt) = %v, want 0.6", got)
	}
}

func TestPairAntecedents(t *testing.T) {
	p, err := Train(carsRel(), "body_style", Config{MinSupport: 3, MinConfidence: 0.6, MaxAntecedent: 2})
	if err != nil {
		t.Fatal(err)
	}
	foundPair := false
	for _, r := range p.Rules {
		if len(r.Antecedent) == 2 {
			foundPair = true
		}
	}
	if !foundPair {
		t.Error("pair antecedent rules expected")
	}
	// MaxAntecedent=1 must produce no pairs.
	p1, _ := Train(carsRel(), "body_style", Config{MinSupport: 3, MinConfidence: 0.6, MaxAntecedent: 1})
	for _, r := range p1.Rules {
		if len(r.Antecedent) > 1 {
			t.Errorf("pair rule with MaxAntecedent=1: %v", r)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(carsRel(), "nope", Config{}); err == nil {
		t.Error("unknown target should error")
	}
	s := relation.MustSchema(relation.Attribute{Name: "a", Kind: relation.KindString})
	empty := relation.New("e", s)
	if _, err := Train(empty, "a", Config{}); err == nil {
		t.Error("empty sample should error")
	}
}

func TestNullAntecedentsSkipped(t *testing.T) {
	s := relation.MustSchema(
		relation.Attribute{Name: "x", Kind: relation.KindString},
		relation.Attribute{Name: "y", Kind: relation.KindString},
	)
	r := relation.New("r", s)
	for i := 0; i < 5; i++ {
		r.MustInsert(relation.Tuple{relation.Null(), relation.String("v")})
	}
	for i := 0; i < 5; i++ {
		r.MustInsert(relation.Tuple{relation.String("a"), relation.String("v")})
	}
	p, err := Train(r, "y", Config{MinSupport: 2, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, rule := range p.Rules {
		for _, it := range rule.Antecedent {
			if it.Value.IsNull() {
				t.Errorf("null antecedent mined: %v", rule)
			}
		}
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Antecedent: []Item{{"model", relation.String("Z4")}},
		TargetAttr: "body_style",
		Consequent: relation.String("Convt"),
		Support:    18,
		Confidence: 0.9,
	}
	want := "{model=Z4} => body_style=Convt (sup=18 conf=0.900)"
	if r.String() != want {
		t.Errorf("String() = %q", r.String())
	}
}

func TestRulesSortedByConfidence(t *testing.T) {
	p, err := Train(carsRel(), "body_style", Config{MinSupport: 2, MinConfidence: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(p.Rules); i++ {
		if p.Rules[i-1].Confidence < p.Rules[i].Confidence {
			t.Fatal("rules not sorted by confidence desc")
		}
	}
}
