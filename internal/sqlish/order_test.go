package sqlish

import (
	"sort"
	"testing"

	"qpiad/internal/relation"
)

func TestParseOrderByAndLimit(t *testing.T) {
	st := mustParse(t, "SELECT * FROM cars WHERE make = Honda ORDER BY price DESC, year LIMIT 5")
	if len(st.Order) != 2 {
		t.Fatalf("order = %v", st.Order)
	}
	if st.Order[0].Attr != "price" || !st.Order[0].Desc {
		t.Errorf("first term = %+v", st.Order[0])
	}
	if st.Order[1].Attr != "year" || st.Order[1].Desc {
		t.Errorf("second term = %+v", st.Order[1])
	}
	if st.Limit != 5 {
		t.Errorf("limit = %d", st.Limit)
	}
	// ASC keyword is accepted.
	st = mustParse(t, "SELECT * FROM cars ORDER BY year ASC")
	if st.Order[0].Desc {
		t.Error("ASC parsed as DESC")
	}
}

func TestParseOrderLimitErrors(t *testing.T) {
	bad := []string{
		"SELECT * FROM cars ORDER price",
		"SELECT * FROM cars ORDER BY",
		"SELECT * FROM cars LIMIT",
		"SELECT * FROM cars LIMIT abc",
		"SELECT * FROM cars LIMIT -3",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestCoerceTypesChecksOrder(t *testing.T) {
	s := relation.MustSchema(relation.Attribute{Name: "a", Kind: relation.KindInt})
	st := mustParse(t, "SELECT * FROM r ORDER BY nope")
	if err := st.CoerceTypes(s); err == nil {
		t.Error("unknown ORDER BY attribute should error")
	}
}

func TestComparator(t *testing.T) {
	s := relation.MustSchema(
		relation.Attribute{Name: "price", Kind: relation.KindInt},
		relation.Attribute{Name: "year", Kind: relation.KindInt},
	)
	st := mustParse(t, "SELECT * FROM r ORDER BY price DESC, year")
	cmp, err := st.Comparator(s)
	if err != nil {
		t.Fatal(err)
	}
	tuples := []relation.Tuple{
		{relation.Int(100), relation.Int(2005)},
		{relation.Int(200), relation.Int(2001)},
		{relation.Int(200), relation.Int(1999)},
		{relation.Null(), relation.Int(1996)},
		{relation.Int(100), relation.Int(2003)},
	}
	sort.SliceStable(tuples, func(i, j int) bool { return cmp(tuples[i], tuples[j]) < 0 })
	wantPrices := []any{int64(200), int64(200), int64(100), int64(100), nil}
	for i, w := range wantPrices {
		got := tuples[i][0]
		if w == nil {
			if !got.IsNull() {
				t.Fatalf("row %d: want null, got %v", i, got)
			}
			continue
		}
		if got.IntVal() != w.(int64) {
			t.Fatalf("row %d: price %v, want %v", i, got, w)
		}
	}
	// Secondary ascending year within equal price.
	if tuples[0][1].IntVal() != 1999 || tuples[1][1].IntVal() != 2001 {
		t.Errorf("secondary order: %v %v", tuples[0][1], tuples[1][1])
	}
	// No ORDER BY: comparator is all-equal.
	st2 := mustParse(t, "SELECT * FROM r")
	cmp2, err := st2.Comparator(s)
	if err != nil {
		t.Fatal(err)
	}
	if cmp2(tuples[0], tuples[1]) != 0 {
		t.Error("empty order should compare equal")
	}
	// Unknown attribute errors.
	st3 := mustParse(t, "SELECT * FROM r ORDER BY nope")
	if _, err := st3.Comparator(s); err == nil {
		t.Error("unknown attribute should error")
	}
}
