package sqlish

import (
	"testing"

	"qpiad/internal/relation"
)

// FuzzParse asserts the parser never panics and that successful parses
// yield structurally sane statements. Run the fuzzer with:
//
//	go test -fuzz=FuzzParse ./internal/sqlish
//
// Under plain `go test` only the seed corpus runs.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM cars WHERE body_style = 'Convt'",
		"SELECT make, model FROM cars WHERE price BETWEEN 15000 AND 20000",
		"SELECT COUNT(*) FROM cars",
		"SELECT SUM(price) FROM cars WHERE model = 'Civic' AND year >= 2001",
		"select * from t where a is null and b is not null",
		"SELECT * FROM t ORDER BY a DESC, b LIMIT 10",
		"SELECT * FROM t WHERE s = 'O''Brien' AND q = \"x\"",
		"", "SELECT", "))((", "SELECT * FROM t WHERE x = -3.5",
		"SELECT * FROM t WHERE x != y AND z <> 1 LIMIT 0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := relation.MustSchema(
		relation.Attribute{Name: "a", Kind: relation.KindInt},
		relation.Attribute{Name: "b", Kind: relation.KindString},
	)
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			return
		}
		if st.Query.Relation == "" {
			t.Fatalf("accepted statement without relation: %q", input)
		}
		for _, p := range st.Query.Preds {
			if p.Attr == "" {
				t.Fatalf("predicate without attribute: %q", input)
			}
		}
		if st.Limit < 0 {
			t.Fatalf("negative limit accepted: %q", input)
		}
		// CoerceTypes and Comparator must not panic either way.
		_ = st.CoerceTypes(schema)
		_, _ = st.Comparator(schema)
	})
}
