// Package sqlish parses a small SQL dialect into relation queries — the
// surface the qpiad CLI and HTTP mediator expose, mirroring the paper's
// examples:
//
//	SELECT * FROM cars WHERE body_style = 'Convt'
//	SELECT make, model FROM cars WHERE model = 'Accord' AND price BETWEEN 15000 AND 20000
//	SELECT COUNT(*) FROM cars WHERE body_style = 'Convt'
//	SELECT SUM(price) FROM cars WHERE model = 'Civic'
//
// Supported: projection lists or *, the aggregates COUNT/SUM/AVG/MIN/MAX,
// conjunctive WHERE with =, !=, <>, <, <=, >, >=, BETWEEN ... AND ...,
// IS NULL and IS NOT NULL. Values are single- or double-quoted strings,
// numbers, TRUE/FALSE, or barewords (treated as strings). Keywords are
// case-insensitive; identifiers are case-sensitive.
package sqlish

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexer output types.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits the input into tokens. Errors carry byte offsets.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				if input[j] == quote {
					// Doubled quote is an escaped quote.
					if j+1 < n && input[j+1] == quote {
						sb.WriteByte(quote)
						j += 2
						continue
					}
					closed = true
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("sqlish: unterminated string starting at %d", i)
			}
			out = append(out, token{tokString, sb.String(), i})
			i = j + 1
		case isDigit(c) || (c == '-' && i+1 < n && isDigit(input[i+1])):
			j := i + 1
			for j < n && (isDigit(input[j]) || input[j] == '.') {
				j++
			}
			out = append(out, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < n && isIdentRune(rune(input[j])) {
				j++
			}
			out = append(out, token{tokIdent, input[i:j], i})
			i = j
		case strings.ContainsRune("(),*", rune(c)):
			out = append(out, token{tokSymbol, string(c), i})
			i++
		case c == '=':
			out = append(out, token{tokSymbol, "=", i})
			i++
		case c == '!' || c == '<' || c == '>':
			if i+1 < n && (input[i+1] == '=' || (c == '<' && input[i+1] == '>')) {
				out = append(out, token{tokSymbol, input[i : i+2], i})
				i += 2
			} else if c == '!' {
				return nil, fmt.Errorf("sqlish: stray '!' at %d (did you mean !=?)", i)
			} else {
				out = append(out, token{tokSymbol, string(c), i})
				i++
			}
		default:
			return nil, fmt.Errorf("sqlish: unexpected character %q at %d", c, i)
		}
	}
	out = append(out, token{tokEOF, "", n})
	return out, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}
