package sqlish

import (
	"fmt"
	"strconv"
	"strings"

	"qpiad/internal/relation"
)

// OrderBy is one ORDER BY term.
type OrderBy struct {
	Attr string
	Desc bool
}

// Statement is a parsed SELECT.
type Statement struct {
	// Query is the relational form: relation name, conjunctive predicates,
	// optional aggregate.
	Query relation.Query
	// Projection lists the selected columns; empty means * (all columns).
	// Aggregate statements have no projection.
	Projection []string
	// Order holds ORDER BY terms in priority order. Note that QPIAD's
	// possible answers carry their own confidence ranking; ORDER BY applies
	// within the certain and possible sections independently.
	Order []OrderBy
	// Limit caps the returned answers per section; 0 means no limit.
	Limit int
}

// Parse parses one SELECT statement.
func Parse(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	st, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return st, nil
}

type parser struct {
	toks  []token
	pos   int
	input string
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlish: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

// keyword consumes an identifier token matching kw case-insensitively.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %s, got %q", strings.ToUpper(kw), p.peek().text)
	}
	return nil
}

func (p *parser) symbol(s string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.symbol(s) {
		return p.errf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

var aggFuncs = map[string]relation.AggFunc{
	"COUNT": relation.AggCount,
	"SUM":   relation.AggSum,
	"AVG":   relation.AggAvg,
	"MIN":   relation.AggMin,
	"MAX":   relation.AggMax,
}

func (p *parser) parseSelect() (*Statement, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &Statement{}

	// Select list: '*', aggregate, or column list.
	switch {
	case p.symbol("*"):
		// all columns
	default:
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.errf("expected column list, * or aggregate, got %q", t.text)
		}
		if fn, isAgg := aggFuncs[strings.ToUpper(t.text)]; isAgg && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			p.pos += 2 // func name and '('
			agg := relation.Aggregate{Func: fn}
			if p.symbol("*") {
				if fn != relation.AggCount {
					return nil, p.errf("%s(*) is not valid; only COUNT(*)", strings.ToUpper(t.text))
				}
			} else {
				attr, err := p.ident()
				if err != nil {
					return nil, err
				}
				agg.Attr = attr
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			st.Query.Agg = &agg
		} else {
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				st.Projection = append(st.Projection, col)
				if !p.symbol(",") {
					break
				}
			}
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	rel, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Query.Relation = rel

	if p.keyword("WHERE") {
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			st.Query.Preds = append(st.Query.Preds, pred)
			if !p.keyword("AND") {
				break
			}
		}
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			attr, err := p.ident()
			if err != nil {
				return nil, err
			}
			ob := OrderBy{Attr: attr}
			if p.keyword("DESC") {
				ob.Desc = true
			} else {
				p.keyword("ASC")
			}
			st.Order = append(st.Order, ob)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errf("LIMIT needs a number, got %q", t.text)
		}
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		st.Limit = n
	}
	return st, nil
}

func (p *parser) parsePredicate() (relation.Predicate, error) {
	attr, err := p.ident()
	if err != nil {
		return relation.Predicate{}, err
	}
	// IS [NOT] NULL
	if p.keyword("IS") {
		if p.keyword("NOT") {
			if err := p.expectKeyword("NULL"); err != nil {
				return relation.Predicate{}, err
			}
			return relation.Predicate{Attr: attr, Op: relation.OpNotNull}, nil
		}
		if err := p.expectKeyword("NULL"); err != nil {
			return relation.Predicate{}, err
		}
		return relation.IsNull(attr), nil
	}
	// BETWEEN lo AND hi
	if p.keyword("BETWEEN") {
		lo, err := p.value()
		if err != nil {
			return relation.Predicate{}, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return relation.Predicate{}, err
		}
		hi, err := p.value()
		if err != nil {
			return relation.Predicate{}, err
		}
		return relation.Between(attr, lo, hi), nil
	}
	// Comparison operator.
	t := p.peek()
	if t.kind != tokSymbol {
		return relation.Predicate{}, p.errf("expected operator after %q, got %q", attr, t.text)
	}
	var op relation.Op
	switch t.text {
	case "=":
		op = relation.OpEq
	case "!=", "<>":
		op = relation.OpNe
	case "<":
		op = relation.OpLt
	case "<=":
		op = relation.OpLe
	case ">":
		op = relation.OpGt
	case ">=":
		op = relation.OpGe
	default:
		return relation.Predicate{}, p.errf("unknown operator %q", t.text)
	}
	p.pos++
	v, err := p.value()
	if err != nil {
		return relation.Predicate{}, err
	}
	return relation.Predicate{Attr: attr, Op: op, Value: v}, nil
}

// value parses a literal: quoted string, number, TRUE/FALSE, NULL, or a
// bareword (treated as a string, so WHERE make = Honda works).
func (p *parser) value() (relation.Value, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.pos++
		return relation.String(t.text), nil
	case tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return relation.Null(), p.errf("bad number %q", t.text)
			}
			return relation.Float(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return relation.Null(), p.errf("bad number %q", t.text)
		}
		return relation.Int(i), nil
	case tokIdent:
		p.pos++
		switch strings.ToUpper(t.text) {
		case "TRUE":
			return relation.Bool(true), nil
		case "FALSE":
			return relation.Bool(false), nil
		case "NULL":
			return relation.Null(), nil
		default:
			return relation.String(t.text), nil
		}
	default:
		return relation.Null(), p.errf("expected a value, got %q", t.text)
	}
}

// CoerceTypes adjusts the statement's literal types to the schema: integer
// literals become floats for float columns, and numeric strings parsed as
// barewords become numbers where the column is numeric. Unknown attributes
// are reported.
func (st *Statement) CoerceTypes(s *relation.Schema) error {
	for i := range st.Query.Preds {
		p := &st.Query.Preds[i]
		kind, ok := s.KindOf(p.Attr)
		if !ok {
			return fmt.Errorf("sqlish: unknown attribute %q (schema %s)", p.Attr, s)
		}
		var err error
		if p.Value, err = coerce(p.Value, kind); err != nil {
			return fmt.Errorf("sqlish: attribute %q: %w", p.Attr, err)
		}
		if p.Op == relation.OpBetween {
			if p.High, err = coerce(p.High, kind); err != nil {
				return fmt.Errorf("sqlish: attribute %q: %w", p.Attr, err)
			}
		}
	}
	for _, col := range st.Projection {
		if !s.Has(col) {
			return fmt.Errorf("sqlish: unknown projection column %q", col)
		}
	}
	if st.Query.Agg != nil && st.Query.Agg.Attr != "" && !s.Has(st.Query.Agg.Attr) {
		return fmt.Errorf("sqlish: unknown aggregate attribute %q", st.Query.Agg.Attr)
	}
	for _, ob := range st.Order {
		if !s.Has(ob.Attr) {
			return fmt.Errorf("sqlish: unknown ORDER BY attribute %q", ob.Attr)
		}
	}
	return nil
}

// Comparator builds a tuple comparison function for the statement's ORDER
// BY terms under the given schema (negative = a before b). Nulls sort
// last regardless of direction. With no ORDER BY the comparator treats
// everything as equal, which keeps stable sorts order-preserving.
func (st *Statement) Comparator(s *relation.Schema) (func(a, b relation.Tuple) int, error) {
	type term struct {
		col  int
		desc bool
	}
	terms := make([]term, len(st.Order))
	for i, ob := range st.Order {
		col, ok := s.Index(ob.Attr)
		if !ok {
			return nil, fmt.Errorf("sqlish: unknown ORDER BY attribute %q", ob.Attr)
		}
		terms[i] = term{col, ob.Desc}
	}
	return func(a, b relation.Tuple) int {
		for _, t := range terms {
			va, vb := a[t.col], b[t.col]
			switch {
			case va.IsNull() && vb.IsNull():
				continue
			case va.IsNull():
				return 1 // nulls last
			case vb.IsNull():
				return -1
			}
			c, ok := va.Compare(vb)
			if !ok || c == 0 {
				continue
			}
			if t.desc {
				return -c
			}
			return c
		}
		return 0
	}, nil
}

func coerce(v relation.Value, kind relation.Kind) (relation.Value, error) {
	if v.IsNull() || v.Kind() == kind {
		return v, nil
	}
	switch kind {
	case relation.KindFloat:
		if v.Kind() == relation.KindInt {
			return relation.Float(float64(v.IntVal())), nil
		}
		if v.Kind() == relation.KindString {
			if f, err := strconv.ParseFloat(v.Str(), 64); err == nil {
				return relation.Float(f), nil
			}
		}
	case relation.KindInt:
		if v.Kind() == relation.KindFloat && v.FloatVal() == float64(int64(v.FloatVal())) {
			return relation.Int(int64(v.FloatVal())), nil
		}
		if v.Kind() == relation.KindString {
			if i, err := strconv.ParseInt(v.Str(), 10, 64); err == nil {
				return relation.Int(i), nil
			}
		}
	case relation.KindBool:
		if v.Kind() == relation.KindString {
			if b, err := strconv.ParseBool(v.Str()); err == nil {
				return relation.Bool(b), nil
			}
		}
	case relation.KindString:
		// Render numerics back to strings for string columns.
		return relation.String(v.String()), nil
	}
	return v, fmt.Errorf("cannot use %s value %s where %s is expected", v.Kind(), v, kind)
}
