package sqlish

import (
	"strings"
	"testing"

	"qpiad/internal/relation"
)

func mustParse(t *testing.T, in string) *Statement {
	t.Helper()
	st, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	return st
}

func TestParseStarSelect(t *testing.T) {
	st := mustParse(t, "SELECT * FROM cars WHERE body_style = 'Convt'")
	if st.Query.Relation != "cars" {
		t.Errorf("relation = %q", st.Query.Relation)
	}
	if len(st.Projection) != 0 {
		t.Errorf("projection = %v", st.Projection)
	}
	if len(st.Query.Preds) != 1 {
		t.Fatalf("preds = %v", st.Query.Preds)
	}
	p := st.Query.Preds[0]
	if p.Attr != "body_style" || p.Op != relation.OpEq || p.Value.Str() != "Convt" {
		t.Errorf("pred = %v", p)
	}
}

func TestParseProjection(t *testing.T) {
	st := mustParse(t, "SELECT make, model FROM cars")
	if len(st.Projection) != 2 || st.Projection[0] != "make" || st.Projection[1] != "model" {
		t.Errorf("projection = %v", st.Projection)
	}
	if len(st.Query.Preds) != 0 {
		t.Errorf("unexpected preds: %v", st.Query.Preds)
	}
}

func TestParseConjunction(t *testing.T) {
	st := mustParse(t, `SELECT * FROM cars WHERE model = 'Accord' AND price BETWEEN 15000 AND 20000 AND year >= 2001`)
	if len(st.Query.Preds) != 3 {
		t.Fatalf("preds = %v", st.Query.Preds)
	}
	if st.Query.Preds[1].Op != relation.OpBetween ||
		st.Query.Preds[1].Value.IntVal() != 15000 ||
		st.Query.Preds[1].High.IntVal() != 20000 {
		t.Errorf("between = %v", st.Query.Preds[1])
	}
	if st.Query.Preds[2].Op != relation.OpGe {
		t.Errorf("ge = %v", st.Query.Preds[2])
	}
}

func TestParseOperators(t *testing.T) {
	cases := map[string]relation.Op{
		"=": relation.OpEq, "!=": relation.OpNe, "<>": relation.OpNe,
		"<": relation.OpLt, "<=": relation.OpLe, ">": relation.OpGt, ">=": relation.OpGe,
	}
	for sym, op := range cases {
		st := mustParse(t, "SELECT * FROM r WHERE x "+sym+" 5")
		if st.Query.Preds[0].Op != op {
			t.Errorf("%s parsed as %v", sym, st.Query.Preds[0].Op)
		}
	}
}

func TestParseNullPredicates(t *testing.T) {
	st := mustParse(t, "SELECT * FROM cars WHERE body_style IS NULL")
	if st.Query.Preds[0].Op != relation.OpIsNull {
		t.Errorf("pred = %v", st.Query.Preds[0])
	}
	st = mustParse(t, "SELECT * FROM cars WHERE body_style IS NOT NULL")
	if st.Query.Preds[0].Op != relation.OpNotNull {
		t.Errorf("pred = %v", st.Query.Preds[0])
	}
}

func TestParseAggregates(t *testing.T) {
	st := mustParse(t, "SELECT COUNT(*) FROM cars WHERE body_style = 'Convt'")
	if st.Query.Agg == nil || st.Query.Agg.Func != relation.AggCount || st.Query.Agg.Attr != "" {
		t.Errorf("agg = %v", st.Query.Agg)
	}
	st = mustParse(t, "SELECT SUM(price) FROM cars")
	if st.Query.Agg == nil || st.Query.Agg.Func != relation.AggSum || st.Query.Agg.Attr != "price" {
		t.Errorf("agg = %v", st.Query.Agg)
	}
	for _, fn := range []string{"AVG", "MIN", "MAX"} {
		st = mustParse(t, "SELECT "+fn+"(price) FROM cars")
		if st.Query.Agg == nil || st.Query.Agg.Attr != "price" {
			t.Errorf("%s agg = %v", fn, st.Query.Agg)
		}
	}
}

func TestParseValueTypes(t *testing.T) {
	st := mustParse(t, `SELECT * FROM r WHERE a = 'str' AND b = 42 AND c = 3.5 AND d = TRUE AND e = -7 AND f = bareword`)
	vals := st.Query.Preds
	if vals[0].Value.Kind() != relation.KindString {
		t.Error("quoted string")
	}
	if vals[1].Value.IntVal() != 42 {
		t.Error("int")
	}
	if vals[2].Value.FloatVal() != 3.5 {
		t.Error("float")
	}
	if vals[3].Value.BoolVal() != true {
		t.Error("bool")
	}
	if vals[4].Value.IntVal() != -7 {
		t.Error("negative int")
	}
	if vals[5].Value.Str() != "bareword" {
		t.Error("bareword")
	}
}

func TestParseQuotedEscapes(t *testing.T) {
	st := mustParse(t, `SELECT * FROM r WHERE a = 'O''Brien' AND b = "say ""hi"""`)
	if st.Query.Preds[0].Value.Str() != "O'Brien" {
		t.Errorf("single-quote escape: %q", st.Query.Preds[0].Value.Str())
	}
	if st.Query.Preds[1].Value.Str() != `say "hi"` {
		t.Errorf("double-quote escape: %q", st.Query.Preds[1].Value.Str())
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	st := mustParse(t, "select * from cars where make = Honda and year = 2004")
	if len(st.Query.Preds) != 2 {
		t.Errorf("preds = %v", st.Query.Preds)
	}
}

func TestParseMultiWordValues(t *testing.T) {
	st := mustParse(t, `SELECT * FROM complaints WHERE general_component = 'Engine and Engine Cooling'`)
	if st.Query.Preds[0].Value.Str() != "Engine and Engine Cooling" {
		t.Errorf("value = %q", st.Query.Preds[0].Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE cars SET x = 1",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM cars WHERE",
		"SELECT * FROM cars WHERE x",
		"SELECT * FROM cars WHERE x =",
		"SELECT * FROM cars WHERE x BETWEEN 1",
		"SELECT * FROM cars WHERE x BETWEEN 1 AND",
		"SELECT * FROM cars extra",
		"SELECT SUM(*) FROM cars",
		"SELECT COUNT( FROM cars",
		"SELECT * FROM cars WHERE x IS",
		"SELECT * FROM cars WHERE a = 'unterminated",
		"SELECT * FROM cars WHERE x ! 1",
		"SELECT * FROM cars WHERE x = @",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestCoerceTypes(t *testing.T) {
	s := relation.MustSchema(
		relation.Attribute{Name: "make", Kind: relation.KindString},
		relation.Attribute{Name: "price", Kind: relation.KindFloat},
		relation.Attribute{Name: "year", Kind: relation.KindInt},
		relation.Attribute{Name: "certified", Kind: relation.KindBool},
	)
	st := mustParse(t, `SELECT make FROM cars WHERE price = 15000 AND year = '2004' AND certified = 'true' AND make = 5`)
	if err := st.CoerceTypes(s); err != nil {
		t.Fatal(err)
	}
	if st.Query.Preds[0].Value.Kind() != relation.KindFloat {
		t.Error("int should coerce to float")
	}
	if st.Query.Preds[1].Value.IntVal() != 2004 {
		t.Error("numeric string should coerce to int")
	}
	if st.Query.Preds[2].Value.BoolVal() != true {
		t.Error("string should coerce to bool")
	}
	if st.Query.Preds[3].Value.Str() != "5" {
		t.Error("number should render as string for string columns")
	}
}

func TestCoerceBetween(t *testing.T) {
	s := relation.MustSchema(relation.Attribute{Name: "price", Kind: relation.KindFloat})
	st := mustParse(t, "SELECT * FROM cars WHERE price BETWEEN 1 AND 2")
	if err := st.CoerceTypes(s); err != nil {
		t.Fatal(err)
	}
	if st.Query.Preds[0].Value.Kind() != relation.KindFloat || st.Query.Preds[0].High.Kind() != relation.KindFloat {
		t.Error("both range ends should coerce")
	}
}

func TestCoerceErrors(t *testing.T) {
	s := relation.MustSchema(
		relation.Attribute{Name: "year", Kind: relation.KindInt},
	)
	st := mustParse(t, "SELECT * FROM cars WHERE nope = 1")
	if err := st.CoerceTypes(s); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown attribute: %v", err)
	}
	st = mustParse(t, "SELECT * FROM cars WHERE year = 'notanumber'")
	if err := st.CoerceTypes(s); err == nil {
		t.Error("uncoercible value should error")
	}
	st = mustParse(t, "SELECT nope FROM cars")
	if err := st.CoerceTypes(s); err == nil {
		t.Error("unknown projection should error")
	}
	st = mustParse(t, "SELECT SUM(nope) FROM cars")
	if err := st.CoerceTypes(s); err == nil {
		t.Error("unknown aggregate attribute should error")
	}
}

func TestParseRoundTripAgainstRelation(t *testing.T) {
	// End-to-end: parse, coerce, run against a relation.
	s := relation.MustSchema(
		relation.Attribute{Name: "model", Kind: relation.KindString},
		relation.Attribute{Name: "price", Kind: relation.KindInt},
	)
	r := relation.New("cars", s)
	r.MustInsert(relation.Tuple{relation.String("Civic"), relation.Int(15000)})
	r.MustInsert(relation.Tuple{relation.String("Civic"), relation.Int(18000)})
	r.MustInsert(relation.Tuple{relation.String("Z4"), relation.Int(36000)})
	st := mustParse(t, "SELECT * FROM cars WHERE model = 'Civic' AND price BETWEEN 14000 AND 16000")
	if err := st.CoerceTypes(s); err != nil {
		t.Fatal(err)
	}
	got := r.Select(st.Query)
	if len(got) != 1 || got[0][1].IntVal() != 15000 {
		t.Errorf("select = %v", got)
	}
}
