package nbc

import (
	"fmt"

	"qpiad/internal/afd"
	"qpiad/internal/relation"
)

// Mode selects the AFD/classifier combination strategy of Section 5.3.
type Mode uint8

const (
	// ModeHybridOneAFD uses the determining set of the highest-confidence
	// AFD when that confidence is at least HybridMinConfidence, and falls
	// back to all attributes otherwise. This is the strategy QPIAD ships
	// with (best accuracy in Table 3).
	ModeHybridOneAFD Mode = iota
	// ModeBestAFD always uses the highest-confidence AFD's determining set
	// (falling back to all attributes only when no AFD exists at all).
	ModeBestAFD
	// ModeEnsemble trains one classifier per mined AFD for the target and
	// combines their distributions by confidence-weighted averaging.
	ModeEnsemble
	// ModeAllAttributes ignores AFDs and uses every other attribute
	// (the no-feature-selection baseline).
	ModeAllAttributes
)

// String names the mode as in the paper's Table 3.
func (m Mode) String() string {
	switch m {
	case ModeHybridOneAFD:
		return "Hybrid One-AFD"
	case ModeBestAFD:
		return "Best AFD"
	case ModeEnsemble:
		return "Ensemble"
	case ModeAllAttributes:
		return "All Attributes"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// PredictorConfig tunes predictor construction.
type PredictorConfig struct {
	// Mode selects the combination strategy. Default ModeHybridOneAFD.
	Mode Mode
	// HybridMinConfidence is the AFD confidence below which Hybrid One-AFD
	// falls back to all attributes. The paper sets 0.5. Default 0.5.
	HybridMinConfidence float64
	// Classifier carries the underlying NBC settings.
	Classifier Config
}

func (c PredictorConfig) withDefaults() PredictorConfig {
	if c.HybridMinConfidence == 0 {
		c.HybridMinConfidence = 0.5
	}
	return c
}

// Predictor estimates the value distribution of one attribute's missing
// values, combining mined AFDs with Naive Bayes classifiers.
type Predictor struct {
	// Target is the attribute whose nulls this predictor completes.
	Target string
	// Mode records the strategy in use.
	Mode Mode
	// AFD is the dependency backing the primary classifier (zero-valued for
	// all-attribute fallbacks); used to "explain" relevance assessments.
	AFD afd.AFD
	// UsedFallback reports whether an all-attributes classifier was used
	// because no sufficiently confident AFD existed.
	UsedFallback bool

	classifiers []*Classifier
	weights     []float64
}

// TrainPredictor builds a predictor for target from the sample, the mined
// AFD result, and the configuration.
func TrainPredictor(sample *relation.Relation, target string, mined *afd.Result, cfg PredictorConfig) (*Predictor, error) {
	cfg = cfg.withDefaults()
	p := &Predictor{Target: target, Mode: cfg.Mode}

	allOther := make([]string, 0, sample.Schema.Len()-1)
	for _, n := range sample.Schema.Names() {
		if n != target {
			allOther = append(allOther, n)
		}
	}
	trainAll := func() error {
		cl, err := Train(sample, target, allOther, cfg.Classifier)
		if err != nil {
			return err
		}
		p.classifiers = []*Classifier{cl}
		p.weights = []float64{1}
		p.UsedFallback = true
		return nil
	}

	best, hasBest := afd.AFD{}, false
	if mined != nil {
		best, hasBest = mined.Best(target)
	}

	switch cfg.Mode {
	case ModeAllAttributes:
		if err := trainAll(); err != nil {
			return nil, err
		}
		p.UsedFallback = false
	case ModeBestAFD:
		if !hasBest {
			if err := trainAll(); err != nil {
				return nil, err
			}
			break
		}
		cl, err := Train(sample, target, best.Determining, cfg.Classifier)
		if err != nil {
			return nil, err
		}
		p.classifiers = []*Classifier{cl}
		p.weights = []float64{1}
		p.AFD = best
	case ModeHybridOneAFD:
		if !hasBest || best.Confidence < cfg.HybridMinConfidence {
			if err := trainAll(); err != nil {
				return nil, err
			}
			break
		}
		cl, err := Train(sample, target, best.Determining, cfg.Classifier)
		if err != nil {
			return nil, err
		}
		p.classifiers = []*Classifier{cl}
		p.weights = []float64{1}
		p.AFD = best
	case ModeEnsemble:
		deps := []afd.AFD(nil)
		if mined != nil {
			deps = mined.ForDependent(target)
		}
		if len(deps) == 0 {
			if err := trainAll(); err != nil {
				return nil, err
			}
			break
		}
		for _, d := range deps {
			cl, err := Train(sample, target, d.Determining, cfg.Classifier)
			if err != nil {
				return nil, err
			}
			p.classifiers = append(p.classifiers, cl)
			p.weights = append(p.weights, d.Confidence)
		}
		p.AFD = deps[0]
	default:
		return nil, fmt.Errorf("nbc: unknown mode %v", cfg.Mode)
	}
	return p, nil
}

// Features returns the union of feature attributes across the predictor's
// classifiers, in first-appearance order. For single-classifier modes this
// is the determining set driving query rewriting.
func (p *Predictor) Features() []string {
	seen := make(map[string]bool)
	var out []string
	for _, cl := range p.classifiers {
		for _, f := range cl.Features {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	return out
}

// PredictEvidence returns the distribution over target values given the
// evidence map, combining classifier outputs per the predictor's mode.
func (p *Predictor) PredictEvidence(evidence map[string]relation.Value) Distribution {
	if len(p.classifiers) == 1 {
		return p.classifiers[0].PredictEvidence(evidence)
	}
	// Weighted average over a shared class list. All classifiers were
	// trained on the same sample/target, so class lists coincide; merge
	// defensively anyway.
	type acc struct {
		val relation.Value
		w   float64
	}
	merged := make(map[string]*acc)
	var order []string
	totalW := 0.0
	for i, cl := range p.classifiers {
		d := cl.PredictEvidence(evidence)
		w := p.weights[i]
		totalW += w
		for j := 0; j < d.Len(); j++ {
			k := d.Value(j).Key()
			a := merged[k]
			if a == nil {
				a = &acc{val: d.Value(j)}
				merged[k] = a
				order = append(order, k)
			}
			a.w += w * d.ProbAt(j)
		}
	}
	vals := make([]relation.Value, 0, len(order))
	weights := make([]float64, 0, len(order))
	for _, k := range order {
		vals = append(vals, merged[k].val)
		weights = append(weights, merged[k].w)
	}
	return newDistribution(vals, weights)
}

// Predict returns the distribution for tuple t under schema s, using t's
// non-null feature values as evidence.
func (p *Predictor) Predict(s *relation.Schema, t relation.Tuple) Distribution {
	ev := make(map[string]relation.Value)
	for _, f := range p.Features() {
		if i, ok := s.Index(f); ok {
			ev[f] = t[i]
		}
	}
	return p.PredictEvidence(ev)
}

// Explain describes the knowledge backing this predictor, mirroring the
// QPIAD UI's justification snippets ("the learned AFD Model ~> Body Style").
func (p *Predictor) Explain() string {
	if p.UsedFallback || len(p.AFD.Determining) == 0 {
		return fmt.Sprintf("NBC over all attributes (no confident AFD for %s)", p.Target)
	}
	return fmt.Sprintf("learned AFD %s", p.AFD)
}
