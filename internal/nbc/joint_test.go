package nbc

import (
	"math"
	"math/rand"
	"testing"

	"qpiad/internal/relation"
)

// xorRel builds the classic interaction case NBC cannot factor: the class
// is x XOR y. The joint backoff must recover it; plain NBC cannot.
func xorRel(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	s := relation.MustSchema(
		relation.Attribute{Name: "x", Kind: relation.KindInt},
		relation.Attribute{Name: "y", Kind: relation.KindInt},
		relation.Attribute{Name: "z", Kind: relation.KindInt},
	)
	r := relation.New("xor", s)
	for i := 0; i < n; i++ {
		x := int64(rng.Intn(2))
		y := int64(rng.Intn(2))
		r.MustInsert(relation.Tuple{relation.Int(x), relation.Int(y), relation.Int(x ^ y)})
	}
	return r
}

func TestJointBackoffSolvesXOR(t *testing.T) {
	r := xorRel(400, 1)
	withJoint, err := Train(r, "z", []string{"x", "y"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Train(r, "z", []string{"x", "y"}, Config{DisableJointBackoff: true})
	if err != nil {
		t.Fatal(err)
	}
	acc := func(c *Classifier) float64 {
		correct := 0
		cases := [][3]int64{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
		for _, cs := range cases {
			ev := map[string]relation.Value{
				"x": relation.Int(cs[0]),
				"y": relation.Int(cs[1]),
			}
			guess, _, _ := c.PredictEvidence(ev).Top()
			if guess.IntVal() == cs[2] {
				correct++
			}
		}
		return float64(correct) / 4
	}
	if got := acc(withJoint); got != 1 {
		t.Errorf("joint backoff should solve XOR, accuracy %v", got)
	}
	if got := acc(without); got == 1 {
		t.Error("factored NBC should NOT solve XOR (sanity check of the ablation)")
	}
}

func TestJointBackoffFallsBackWhenSparse(t *testing.T) {
	r := trainRel()
	cl, err := Train(r, "body_style", []string{"model", "make"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// An unseen combination: the joint table has no row, so the prediction
	// must equal the pure-NBC posterior.
	off, err := Train(r, "body_style", []string{"model", "make"}, Config{DisableJointBackoff: true})
	if err != nil {
		t.Fatal(err)
	}
	ev := map[string]relation.Value{
		"model": relation.String("Z4"),
		"make":  relation.String("Honda"), // never co-occurs with Z4
	}
	a := cl.PredictEvidence(ev)
	b := off.PredictEvidence(ev)
	for i := 0; i < a.Len(); i++ {
		if math.Abs(a.ProbAt(i)-b.Prob(a.Value(i))) > 1e-12 {
			t.Fatal("unseen joint combination must fall back to factored NBC")
		}
	}
}

func TestJointBackoffPartialEvidenceUnaffected(t *testing.T) {
	r := trainRel()
	cl, _ := Train(r, "body_style", []string{"model", "make"}, Config{})
	off, _ := Train(r, "body_style", []string{"model", "make"}, Config{DisableJointBackoff: true})
	// Evidence missing one feature: joint path cannot apply.
	ev := map[string]relation.Value{"model": relation.String("Z4")}
	a := cl.PredictEvidence(ev)
	b := off.PredictEvidence(ev)
	for i := 0; i < a.Len(); i++ {
		if math.Abs(a.ProbAt(i)-b.Prob(a.Value(i))) > 1e-12 {
			t.Fatal("partial evidence must bypass the joint backoff")
		}
	}
}

func TestJointBackoffStillADistribution(t *testing.T) {
	r := xorRel(100, 2)
	cl, _ := Train(r, "z", []string{"x", "y"}, Config{JointM0: 5})
	for x := int64(0); x < 2; x++ {
		for y := int64(0); y < 2; y++ {
			d := cl.PredictEvidence(map[string]relation.Value{
				"x": relation.Int(x), "y": relation.Int(y),
			})
			sum := 0.0
			for i := 0; i < d.Len(); i++ {
				p := d.ProbAt(i)
				if p < 0 || p > 1 {
					t.Fatalf("prob out of range: %v", p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("sum = %v", sum)
			}
		}
	}
}

func TestJointM0Shrinkage(t *testing.T) {
	// With enormous m0, the joint estimate is ignored even on exact
	// matches, converging to factored NBC.
	r := xorRel(200, 3)
	heavy, _ := Train(r, "z", []string{"x", "y"}, Config{JointM0: 1e12})
	plain, _ := Train(r, "z", []string{"x", "y"}, Config{DisableJointBackoff: true})
	ev := map[string]relation.Value{"x": relation.Int(1), "y": relation.Int(0)}
	a := heavy.PredictEvidence(ev)
	b := plain.PredictEvidence(ev)
	for i := 0; i < a.Len(); i++ {
		if math.Abs(a.ProbAt(i)-b.Prob(a.Value(i))) > 1e-6 {
			t.Fatal("huge JointM0 should converge to factored NBC")
		}
	}
}
