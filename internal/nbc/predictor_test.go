package nbc

import (
	"math"
	"strings"
	"testing"

	"qpiad/internal/afd"
	"qpiad/internal/relation"
)

func minedFor(t *testing.T, r *relation.Relation) *afd.Result {
	t.Helper()
	return afd.Mine(r, afd.Config{MinSupport: 2, PruneDelta: 0.0001})
}

func TestHybridUsesBestAFD(t *testing.T) {
	r := trainRel()
	mined := minedFor(t, r)
	p, err := TrainPredictor(r, "body_style", mined, PredictorConfig{Mode: ModeHybridOneAFD})
	if err != nil {
		t.Fatal(err)
	}
	if p.UsedFallback {
		t.Errorf("hybrid should use the mined AFD; Explain=%q", p.Explain())
	}
	d := p.PredictEvidence(map[string]relation.Value{"model": relation.String("Z4")})
	if top, _, _ := d.Top(); top.Str() != "Convt" {
		t.Errorf("hybrid predict top = %v", top)
	}
	if !strings.Contains(p.Explain(), "~>") {
		t.Errorf("Explain should cite the AFD: %q", p.Explain())
	}
}

func TestHybridFallsBackOnLowConfidence(t *testing.T) {
	r := trainRel()
	mined := minedFor(t, r)
	// Force the threshold above every mined confidence.
	p, err := TrainPredictor(r, "body_style", mined, PredictorConfig{
		Mode:                ModeHybridOneAFD,
		HybridMinConfidence: 1.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.UsedFallback {
		t.Error("hybrid should fall back when no AFD meets the threshold")
	}
	feats := p.Features()
	if len(feats) != 2 { // make, model
		t.Errorf("fallback features = %v", feats)
	}
}

func TestBestAFDModeWithoutAFDs(t *testing.T) {
	r := trainRel()
	p, err := TrainPredictor(r, "body_style", nil, PredictorConfig{Mode: ModeBestAFD})
	if err != nil {
		t.Fatal(err)
	}
	if !p.UsedFallback {
		t.Error("BestAFD with no mined result should fall back")
	}
}

func TestAllAttributesMode(t *testing.T) {
	r := trainRel()
	mined := minedFor(t, r)
	p, err := TrainPredictor(r, "body_style", mined, PredictorConfig{Mode: ModeAllAttributes})
	if err != nil {
		t.Fatal(err)
	}
	feats := p.Features()
	if len(feats) != 2 {
		t.Errorf("all-attributes features = %v", feats)
	}
	if p.UsedFallback {
		t.Error("AllAttributes is not a fallback")
	}
}

func TestEnsembleMode(t *testing.T) {
	r := trainRel()
	mined := minedFor(t, r)
	p, err := TrainPredictor(r, "body_style", mined, PredictorConfig{Mode: ModeEnsemble})
	if err != nil {
		t.Fatal(err)
	}
	d := p.PredictEvidence(map[string]relation.Value{
		"model": relation.String("Z4"),
		"make":  relation.String("BMW"),
	})
	sum := 0.0
	for i := 0; i < d.Len(); i++ {
		sum += d.ProbAt(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ensemble distribution sums to %v", sum)
	}
	if top, _, _ := d.Top(); top.Str() != "Convt" {
		t.Errorf("ensemble top = %v", top)
	}
}

func TestEnsembleFallsBackWithNoAFDs(t *testing.T) {
	r := trainRel()
	p, err := TrainPredictor(r, "body_style", nil, PredictorConfig{Mode: ModeEnsemble})
	if err != nil {
		t.Fatal(err)
	}
	if !p.UsedFallback {
		t.Error("ensemble with no AFDs should fall back")
	}
}

func TestPredictorPredictTuple(t *testing.T) {
	r := trainRel()
	mined := minedFor(t, r)
	p, err := TrainPredictor(r, "body_style", mined, PredictorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.Tuple{relation.String("BMW"), relation.String("Z4"), relation.Null()}
	d := p.Predict(r.Schema, tu)
	if top, prob, _ := d.Top(); top.Str() != "Convt" || prob < 0.5 {
		t.Errorf("Predict = %v (%v)", top, prob)
	}
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeHybridOneAFD:  "Hybrid One-AFD",
		ModeBestAFD:       "Best AFD",
		ModeEnsemble:      "Ensemble",
		ModeAllAttributes: "All Attributes",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("Mode %d String = %q want %q", m, m.String(), want)
		}
	}
}

func TestUnknownModeErrors(t *testing.T) {
	r := trainRel()
	if _, err := TrainPredictor(r, "body_style", nil, PredictorConfig{Mode: Mode(99)}); err == nil {
		t.Error("unknown mode should error")
	}
}
