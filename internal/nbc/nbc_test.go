package nbc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qpiad/internal/relation"
)

// trainRel builds a relation where model strongly predicts body_style.
func trainRel() *relation.Relation {
	s := relation.MustSchema(
		relation.Attribute{Name: "make", Kind: relation.KindString},
		relation.Attribute{Name: "model", Kind: relation.KindString},
		relation.Attribute{Name: "body_style", Kind: relation.KindString},
	)
	r := relation.New("cars", s)
	add := func(n int, make, model, style string) {
		for i := 0; i < n; i++ {
			r.MustInsert(relation.Tuple{relation.String(make), relation.String(model), relation.String(style)})
		}
	}
	add(18, "BMW", "Z4", "Convt")
	add(2, "BMW", "Z4", "Coupe")
	add(3, "Audi", "A4", "Convt")
	add(7, "Audi", "A4", "Sedan")
	add(10, "Honda", "Civic", "Sedan")
	return r
}

func TestTrainValidation(t *testing.T) {
	r := trainRel()
	if _, err := Train(r, "nope", []string{"model"}, Config{}); err == nil {
		t.Error("unknown target should error")
	}
	if _, err := Train(r, "body_style", []string{"nope"}, Config{}); err == nil {
		t.Error("unknown feature should error")
	}
	if _, err := Train(r, "body_style", []string{"body_style"}, Config{}); err == nil {
		t.Error("target as feature should error")
	}
	s := relation.MustSchema(relation.Attribute{Name: "a", Kind: relation.KindString})
	empty := relation.New("e", s)
	if _, err := Train(empty, "a", nil, Config{}); err == nil {
		t.Error("empty sample should error")
	}
	allNull := relation.New("n", s)
	allNull.MustInsert(relation.Tuple{relation.Null()})
	if _, err := Train(allNull, "a", nil, Config{}); err == nil {
		t.Error("all-null target should error")
	}
}

func TestPredictFollowsEvidence(t *testing.T) {
	cl, err := Train(trainRel(), "body_style", []string{"model"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Z4 is 90% Convt in training.
	d := cl.PredictEvidence(map[string]relation.Value{"model": relation.String("Z4")})
	top, p, ok := d.Top()
	if !ok || top.Str() != "Convt" {
		t.Fatalf("Top for Z4 = %v (ok=%v)", top, ok)
	}
	if p < 0.7 {
		t.Errorf("P(Convt|Z4) = %v, want high", p)
	}
	// Civic is 100% Sedan.
	d = cl.PredictEvidence(map[string]relation.Value{"model": relation.String("Civic")})
	if top, _, _ := d.Top(); top.Str() != "Sedan" {
		t.Errorf("Top for Civic = %v", top)
	}
	// The paper's ordering claim: P(Convt|Z4) > P(Convt|A4).
	pz := cl.PredictEvidence(map[string]relation.Value{"model": relation.String("Z4")}).Prob(relation.String("Convt"))
	pa := cl.PredictEvidence(map[string]relation.Value{"model": relation.String("A4")}).Prob(relation.String("Convt"))
	if pz <= pa {
		t.Errorf("P(Convt|Z4)=%v should exceed P(Convt|A4)=%v", pz, pa)
	}
}

func TestPredictNoEvidenceIsPrior(t *testing.T) {
	cl, err := Train(trainRel(), "body_style", []string{"model"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d := cl.PredictEvidence(nil)
	// Priors: Convt 21/40, Sedan 17/40, Coupe 2/40 (smoothed).
	if top, _, _ := d.Top(); top.Str() != "Convt" {
		t.Errorf("prior top = %v", top)
	}
	if d.Prob(relation.String("Coupe")) <= 0 {
		t.Error("smoothing must keep unseen-ish classes positive")
	}
}

func TestNullEvidenceIgnored(t *testing.T) {
	cl, _ := Train(trainRel(), "body_style", []string{"model"}, Config{})
	withNull := cl.PredictEvidence(map[string]relation.Value{"model": relation.Null()})
	prior := cl.PredictEvidence(nil)
	for i := 0; i < withNull.Len(); i++ {
		if math.Abs(withNull.ProbAt(i)-prior.Prob(withNull.Value(i))) > 1e-12 {
			t.Fatal("null evidence must behave as no evidence")
		}
	}
}

func TestUnseenEvidenceValue(t *testing.T) {
	cl, _ := Train(trainRel(), "body_style", []string{"model"}, Config{})
	d := cl.PredictEvidence(map[string]relation.Value{"model": relation.String("Unseen-Model")})
	sum := 0.0
	for i := 0; i < d.Len(); i++ {
		p := d.ProbAt(i)
		if p <= 0 || p > 1 {
			t.Fatalf("prob out of range: %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v", sum)
	}
}

func TestMEstimateNeverZero(t *testing.T) {
	cl, _ := Train(trainRel(), "body_style", []string{"model"}, Config{M: 2})
	// Coupe was never seen with Civic; probability must still be positive.
	d := cl.PredictEvidence(map[string]relation.Value{"model": relation.String("Civic")})
	if d.Prob(relation.String("Coupe")) <= 0 {
		t.Error("m-estimate must avoid zero probabilities")
	}
	if d.Prob(relation.String("Convt")) <= 0 {
		t.Error("m-estimate must avoid zero probabilities")
	}
}

func TestNullTargetRowsSkipped(t *testing.T) {
	r := trainRel()
	r.MustInsert(relation.Tuple{relation.String("BMW"), relation.String("Z4"), relation.Null()})
	cl, err := Train(r, "body_style", []string{"model"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cl.Classes() {
		if c.IsNull() {
			t.Error("null must not become a class")
		}
	}
}

func TestPredictTupleSchemaAware(t *testing.T) {
	cl, _ := Train(trainRel(), "body_style", []string{"model", "make"}, Config{})
	// A correlated source with a narrower schema (no make).
	narrow := relation.MustSchema(
		relation.Attribute{Name: "model", Kind: relation.KindString},
	)
	d := cl.Predict(narrow, relation.Tuple{relation.String("Z4")})
	if top, _, _ := d.Top(); top.Str() != "Convt" {
		t.Errorf("narrow-schema predict top = %v", top)
	}
}

func TestDistributionAccessors(t *testing.T) {
	d := newDistribution(
		[]relation.Value{relation.String("a"), relation.String("b")},
		[]float64{3, 1},
	)
	if d.Len() != 2 {
		t.Error("Len")
	}
	if d.Prob(relation.String("a")) != 0.75 {
		t.Errorf("Prob(a) = %v", d.Prob(relation.String("a")))
	}
	if d.Prob(relation.String("zzz")) != 0 {
		t.Error("Prob of non-candidate should be 0")
	}
	es := d.Entries()
	if es[0].Value.Str() != "a" || es[1].Value.Str() != "b" {
		t.Errorf("Entries order: %v", es)
	}
	var empty Distribution
	if _, _, ok := empty.Top(); ok {
		t.Error("empty Top should be !ok")
	}
}

func TestZeroWeightsUniform(t *testing.T) {
	d := newDistribution(
		[]relation.Value{relation.String("a"), relation.String("b")},
		[]float64{0, 0},
	)
	if d.ProbAt(0) != 0.5 || d.ProbAt(1) != 0.5 {
		t.Errorf("zero weights should normalize to uniform: %v %v", d.ProbAt(0), d.ProbAt(1))
	}
}

// Property: posteriors always form a valid distribution, whatever the
// evidence.
func TestPosteriorIsDistribution(t *testing.T) {
	cl, err := Train(trainRel(), "body_style", []string{"model", "make"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	models := []string{"Z4", "A4", "Civic", "Nope", ""}
	makes := []string{"BMW", "Audi", "Honda", "Tesla", ""}
	f := func(mi, ki uint8) bool {
		ev := map[string]relation.Value{}
		if m := models[int(mi)%len(models)]; m != "" {
			ev["model"] = relation.String(m)
		}
		if k := makes[int(ki)%len(makes)]; k != "" {
			ev["make"] = relation.String(k)
		}
		d := cl.PredictEvidence(ev)
		sum := 0.0
		for i := 0; i < d.Len(); i++ {
			p := d.ProbAt(i)
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: with a single feature, the NBC posterior equals the smoothed
// empirical conditional distribution.
func TestSingleFeatureMatchesEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := relation.MustSchema(
		relation.Attribute{Name: "x", Kind: relation.KindInt},
		relation.Attribute{Name: "y", Kind: relation.KindInt},
	)
	r := relation.New("r", s)
	for i := 0; i < 500; i++ {
		x := rng.Intn(3)
		y := x
		if rng.Float64() < 0.25 {
			y = rng.Intn(3)
		}
		r.MustInsert(relation.Tuple{relation.Int(int64(x)), relation.Int(int64(y))})
	}
	cl, err := Train(r, "y", []string{"x"}, Config{M: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	// With m→0, posterior ≈ empirical P(y|x).
	for x := 0; x < 3; x++ {
		counts := map[int64]int{}
		total := 0
		for _, tu := range r.Tuples() {
			if tu[0].IntVal() == int64(x) {
				counts[tu[1].IntVal()]++
				total++
			}
		}
		d := cl.PredictEvidence(map[string]relation.Value{"x": relation.Int(int64(x))})
		for y, c := range counts {
			want := float64(c) / float64(total)
			got := d.Prob(relation.Int(y))
			if math.Abs(got-want) > 0.01 {
				t.Errorf("P(y=%d|x=%d) = %v, empirical %v", y, x, got, want)
			}
		}
	}
}
