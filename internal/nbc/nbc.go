// Package nbc implements the AFD-enhanced Naive Bayes classifiers QPIAD
// uses to estimate the probability distribution over the completions of a
// missing value (Section 5.2 of the paper).
//
// A Classifier is a plain Naive Bayes model with m-estimate (Laplacian
// variant) smoothing over a fixed feature set. A Predictor wraps one or
// more classifiers according to the feature-selection strategies of
// Section 5.3: Best-AFD, Hybrid One-AFD (the paper's choice), an ensemble
// of per-AFD classifiers, and the no-selection All-Attributes baseline.
package nbc

import (
	"fmt"
	"math"
	"sort"

	"qpiad/internal/relation"
)

// Distribution is a probability distribution over candidate values of one
// attribute. Probabilities sum to 1 (up to floating point error).
type Distribution struct {
	vals  []relation.Value
	probs []float64
	index map[string]int
}

// NewDistribution normalizes non-negative weights over candidate values
// into a Distribution. Zero total weight yields the uniform distribution.
// Other prediction packages (association rules, Bayes nets) reuse this so
// that every predictor in the system speaks the same distribution type.
func NewDistribution(vals []relation.Value, weights []float64) Distribution {
	return newDistribution(vals, weights)
}

// newDistribution normalizes the weights into a distribution.
func newDistribution(vals []relation.Value, weights []float64) Distribution {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	probs := make([]float64, len(weights))
	if total > 0 {
		for i, w := range weights {
			probs[i] = w / total
		}
	} else if len(weights) > 0 {
		u := 1.0 / float64(len(weights))
		for i := range probs {
			probs[i] = u
		}
	}
	idx := make(map[string]int, len(vals))
	for i, v := range vals {
		idx[v.Key()] = i
	}
	return Distribution{vals: vals, probs: probs, index: idx}
}

// Len returns the number of candidate values.
func (d Distribution) Len() int { return len(d.vals) }

// Value returns the i-th candidate value.
func (d Distribution) Value(i int) relation.Value { return d.vals[i] }

// ProbAt returns the probability of the i-th candidate value.
func (d Distribution) ProbAt(i int) float64 { return d.probs[i] }

// Prob returns the probability assigned to value v (0 if v is not a
// candidate).
func (d Distribution) Prob(v relation.Value) float64 {
	if i, ok := d.index[v.Key()]; ok {
		return d.probs[i]
	}
	return 0
}

// Top returns the most likely value and its probability. ok is false for an
// empty distribution.
func (d Distribution) Top() (relation.Value, float64, bool) {
	if len(d.vals) == 0 {
		return relation.Null(), 0, false
	}
	best := 0
	for i := 1; i < len(d.probs); i++ {
		if d.probs[i] > d.probs[best] {
			best = i
		}
	}
	return d.vals[best], d.probs[best], true
}

// Entry pairs a candidate value with its probability.
type Entry struct {
	Value relation.Value
	Prob  float64
}

// Entries returns the distribution sorted by descending probability.
func (d Distribution) Entries() []Entry {
	out := make([]Entry, len(d.vals))
	for i := range d.vals {
		out[i] = Entry{d.vals[i], d.probs[i]}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Prob > out[j].Prob })
	return out
}

// Classifier is a Naive Bayes classifier predicting one target attribute
// from a fixed set of feature attributes.
type Classifier struct {
	// Target is the predicted attribute.
	Target string
	// Features are the evidence attributes (the AFD determining set, or all
	// other attributes for the no-selection baseline).
	Features []string

	m          float64 // m-estimate weight
	jointOff   bool
	jointM0    float64
	classes    []relation.Value
	classIdx   map[string]int
	classCount []int
	trainRows  int
	// counts[f][valueKey][classIdx] = co-occurrence count
	counts []map[string][]int
	// totals[f][classIdx] = rows of that class with non-null feature f
	totals [][]int
	// domain[f] = number of distinct non-null feature values seen
	domain []int
	// joint[combinedKey][classIdx] counts full feature-vector combinations
	// (rows non-null on every feature), for the joint backoff.
	joint map[string][]int
}

// Config tunes classifier training.
type Config struct {
	// M is the m-estimate weight (Mitchell's m). Default 1.
	M float64
	// DisableJointBackoff turns off joint determining-set conditioning.
	//
	// By default, when the evidence covers every feature, the classifier
	// blends the exact joint-combination posterior (the AFD semantics:
	// P(Am | dtrSet combination), whose argmax accuracy is the AFD's g3
	// confidence) with the factored NBC posterior, weighting the joint
	// estimate by its support: λ = n/(n + m0). Sparse combinations fall
	// back smoothly to NBC — exactly the regime NBC's independence
	// assumption is for. Feature vectors with many attributes rarely find
	// exact matches, so the all-attribute baseline is unaffected.
	DisableJointBackoff bool
	// JointM0 is the shrinkage mass of the joint backoff. Default 2.
	JointM0 float64
}

func (c Config) withDefaults() Config {
	if c.M == 0 {
		c.M = 1
	}
	if c.JointM0 == 0 {
		c.JointM0 = 2
	}
	return c
}

// Train fits a Naive Bayes classifier for target using the given feature
// attributes over the sample. Rows with a null target are skipped; null
// feature values are skipped per-feature (treated as missing evidence, not
// as a value). Train errors when the sample yields no usable rows.
func Train(sample *relation.Relation, target string, features []string, cfg Config) (*Classifier, error) {
	cfg = cfg.withDefaults()
	s := sample.Schema
	tcol, ok := s.Index(target)
	if !ok {
		return nil, fmt.Errorf("nbc: sample has no target attribute %q", target)
	}
	fcols := make([]int, len(features))
	for i, f := range features {
		c, ok := s.Index(f)
		if !ok {
			return nil, fmt.Errorf("nbc: sample has no feature attribute %q", f)
		}
		if f == target {
			return nil, fmt.Errorf("nbc: target %q cannot be its own feature", f)
		}
		fcols[i] = c
	}
	cl := &Classifier{
		Target:   target,
		Features: append([]string(nil), features...),
		m:        cfg.M,
		jointOff: cfg.DisableJointBackoff,
		jointM0:  cfg.JointM0,
		classIdx: make(map[string]int),
		counts:   make([]map[string][]int, len(features)),
		totals:   make([][]int, len(features)),
		domain:   make([]int, len(features)),
		joint:    make(map[string][]int),
	}
	for i := range cl.counts {
		cl.counts[i] = make(map[string][]int)
	}
	featDomains := make([]map[string]bool, len(features))
	for i := range featDomains {
		featDomains[i] = make(map[string]bool)
	}
	// First pass: the class domain.
	for _, t := range sample.Tuples() {
		v := t[tcol]
		if v.IsNull() {
			continue
		}
		if _, ok := cl.classIdx[v.Key()]; !ok {
			cl.classIdx[v.Key()] = len(cl.classes)
			cl.classes = append(cl.classes, v)
		}
	}
	if len(cl.classes) == 0 {
		return nil, fmt.Errorf("nbc: no non-null %q values in sample", target)
	}
	cl.classCount = make([]int, len(cl.classes))
	for i := range cl.totals {
		cl.totals[i] = make([]int, len(cl.classes))
	}
	// Second pass: counts. jbuf is reused across rows so joint-key encoding
	// allocates only when a new combination is interned into the map.
	var jbuf []byte
	for _, t := range sample.Tuples() {
		v := t[tcol]
		if v.IsNull() {
			continue
		}
		ci := cl.classIdx[v.Key()]
		cl.classCount[ci]++
		cl.trainRows++
		allPresent := len(fcols) > 0
		for fi, fc := range fcols {
			fv := t[fc]
			if fv.IsNull() {
				allPresent = false
				continue
			}
			k := fv.Key()
			featDomains[fi][k] = true
			row := cl.counts[fi][k]
			if row == nil {
				row = make([]int, len(cl.classes))
				cl.counts[fi][k] = row
			}
			row[ci]++
			cl.totals[fi][ci]++
		}
		if allPresent && !cl.jointOff {
			jbuf = appendJointKey(jbuf[:0], t, fcols)
			row := cl.joint[string(jbuf)]
			if row == nil {
				row = make([]int, len(cl.classes))
				cl.joint[string(jbuf)] = row
			}
			row[ci]++
		}
	}
	for i := range featDomains {
		cl.domain[i] = len(featDomains[i])
	}
	return cl, nil
}

// Classes returns the candidate target values observed during training.
func (c *Classifier) Classes() []relation.Value {
	return append([]relation.Value(nil), c.classes...)
}

// prior returns the m-estimate-smoothed class prior.
func (c *Classifier) prior(ci int) float64 {
	p := 1.0 / float64(len(c.classes))
	return (float64(c.classCount[ci]) + c.m*p) / (float64(c.trainRows) + c.m)
}

// cond returns the m-estimate-smoothed P(feature fi = key | class ci).
// The uniform prior reserves mass for one unseen value beyond the training
// domain, so no conditional probability is ever zero.
func (c *Classifier) cond(fi int, key string, ci int) float64 {
	p := 1.0 / float64(c.domain[fi]+1)
	n := 0
	if row, ok := c.counts[fi][key]; ok {
		n = row[ci]
	}
	return (float64(n) + c.m*p) / (float64(c.totals[fi][ci]) + c.m)
}

// appendJointKey appends the encoded full feature vector of t over fcols to
// dst and returns it. Callers reuse dst across rows; looking the result up
// via joint[string(dst)] is allocation-free (the compiler elides the string
// copy for map access), so a string is only materialized when a new
// combination is interned.
func appendJointKey(dst []byte, t relation.Tuple, fcols []int) []byte {
	for i, fc := range fcols {
		if i > 0 {
			dst = append(dst, '\x1f')
		}
		dst = append(dst, t[fc].Key()...)
	}
	return dst
}

// PredictEvidence computes P(target | evidence) for the given attribute →
// value evidence map. Evidence on attributes outside the feature set, and
// null evidence values, are ignored. With no usable evidence the smoothed
// class prior is returned.
//
// When the evidence covers every feature and the joint backoff is enabled,
// the factored NBC posterior is blended with the exact joint-combination
// posterior, weighted by the combination's training support (see Config).
func (c *Classifier) PredictEvidence(evidence map[string]relation.Value) Distribution {
	logw := make([]float64, len(c.classes))
	for ci := range c.classes {
		logw[ci] = math.Log(c.prior(ci))
	}
	allPresent := len(c.Features) > 0
	// jbuf accumulates the joint key in place of the former []string +
	// strings.Join pair; it is only consulted when every feature is present.
	var jbuf []byte
	for fi, f := range c.Features {
		v, ok := evidence[f]
		if !ok || v.IsNull() {
			allPresent = false
			continue
		}
		k := v.Key()
		if allPresent {
			if fi > 0 {
				jbuf = append(jbuf, '\x1f')
			}
			jbuf = append(jbuf, k...)
		}
		for ci := range c.classes {
			logw[ci] += math.Log(c.cond(fi, k, ci))
		}
	}
	// Normalize in log space for stability.
	maxw := math.Inf(-1)
	for _, w := range logw {
		if w > maxw {
			maxw = w
		}
	}
	weights := make([]float64, len(logw))
	for i, w := range logw {
		weights[i] = math.Exp(w - maxw)
	}
	nbcDist := newDistribution(c.classes, weights)
	if c.jointOff || !allPresent {
		return nbcDist
	}
	row := c.joint[string(jbuf)]
	if row == nil {
		return nbcDist
	}
	n := 0
	for _, cnt := range row {
		n += cnt
	}
	if n == 0 {
		return nbcDist
	}
	lambda := float64(n) / (float64(n) + c.jointM0)
	blended := make([]float64, len(c.classes))
	for ci := range c.classes {
		jointP := float64(row[ci]) / float64(n)
		blended[ci] = lambda*jointP + (1-lambda)*nbcDist.ProbAt(ci)
	}
	return newDistribution(c.classes, blended)
}

// Predict computes P(target | t) for a tuple under the given schema,
// using the tuple's non-null values on the classifier's feature attributes
// as evidence. Attributes missing from the schema are skipped, which lets a
// classifier trained on one source score tuples from a correlated source
// with a narrower local schema (Section 4.3).
func (c *Classifier) Predict(s *relation.Schema, t relation.Tuple) Distribution {
	ev := make(map[string]relation.Value, len(c.Features))
	for _, f := range c.Features {
		if i, ok := s.Index(f); ok {
			ev[f] = t[i]
		}
	}
	return c.PredictEvidence(ev)
}
