package datagen

import (
	"math/rand"

	"qpiad/internal/relation"
)

// WebProfile configures per-attribute incompleteness matching one of the
// autonomous web databases surveyed in the paper's Table 1.
type WebProfile struct {
	// Name is the simulated site.
	Name string
	// AttrNullRate gives each attribute's independent null probability.
	// Attributes absent from the map stay complete.
	AttrNullRate map[string]float64
	// DefaultNullRate applies to attributes not listed in AttrNullRate
	// (never the id column).
	DefaultNullRate float64
	// ForceIncomplete nulls one extra random attribute in any tuple that
	// came out complete, modelling sources (Google Base) where every tuple
	// misses something.
	ForceIncomplete bool
}

// The three profiles of Table 1. Default rates are solved so that the
// overall incomplete-tuple fraction lands near the paper's survey numbers
// (33.67%, 98.74%, 100%) given the listed body_style and engine rates.
var (
	// AutoTraderProfile ≈ 33.67% incomplete, 3.6% body style, 8.1% engine.
	AutoTraderProfile = WebProfile{
		Name: "autotrader",
		AttrNullRate: map[string]float64{
			"body_style": 0.036,
			"engine":     0.081,
		},
		DefaultNullRate: 0.056,
	}
	// CarsDirectProfile ≈ 98.74% incomplete, 55.7% body style, 55.8% engine.
	CarsDirectProfile = WebProfile{
		Name: "carsdirect",
		AttrNullRate: map[string]float64{
			"body_style": 0.557,
			"engine":     0.558,
		},
		DefaultNullRate: 0.42,
	}
	// GoogleBaseProfile = 100% incomplete, 83.36% body style, 91.98% engine.
	GoogleBaseProfile = WebProfile{
		Name: "googlebase",
		AttrNullRate: map[string]float64{
			"body_style": 0.8336,
			"engine":     0.9198,
		},
		DefaultNullRate: 0.30,
		ForceIncomplete: true,
	}
)

// WebCarsSchema extends the Cars schema with the engine attribute Table 1
// reports on.
func WebCarsSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "id", Kind: relation.KindInt},
		relation.Attribute{Name: "year", Kind: relation.KindInt},
		relation.Attribute{Name: "make", Kind: relation.KindString},
		relation.Attribute{Name: "model", Kind: relation.KindString},
		relation.Attribute{Name: "price", Kind: relation.KindInt},
		relation.Attribute{Name: "mileage", Kind: relation.KindInt},
		relation.Attribute{Name: "body_style", Kind: relation.KindString},
		relation.Attribute{Name: "engine", Kind: relation.KindString},
	)
}

var engines = []string{"I4", "V6", "V8", "I6", "H4"}

// WebCars generates complete web-car tuples (Cars plus an engine attribute
// loosely determined by the model's price tier).
func WebCars(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	cars := Cars(n, seed)
	r := relation.New("webcars", WebCarsSchema())
	r.Grow(cars.Len())
	for i := 0; i < cars.Len(); i++ {
		t := cars.Tuple(i)
		price := t[cars.Schema.MustIndex("price")].IntVal()
		var engine string
		switch {
		case price >= 40000:
			engine = engines[2] // V8
		case price >= 22000:
			engine = engines[1] // V6
		default:
			engine = engines[0] // I4
		}
		if rng.Float64() < 0.15 {
			engine = engines[rng.Intn(len(engines))]
		}
		r.MustInsert(relation.Tuple{
			t[0], t[1], t[2], t[3], t[4], t[5], t[6],
			relation.String(engine),
		})
	}
	return r
}

// ApplyProfile produces an incomplete copy of gd following the profile.
func ApplyProfile(gd *relation.Relation, p WebProfile, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	out := relation.New(p.Name, gd.Schema)
	out.Grow(gd.Len())
	idCol := idColumn(gd.Schema)
	var nullable []int
	for i := 0; i < gd.Schema.Len(); i++ {
		if i != idCol {
			nullable = append(nullable, i)
		}
	}
	for i := 0; i < gd.Len(); i++ {
		t := gd.Tuple(i).Clone()
		for _, c := range nullable {
			rate, ok := p.AttrNullRate[gd.Schema.Attr(c).Name]
			if !ok {
				rate = p.DefaultNullRate
			}
			if rng.Float64() < rate {
				t[c] = relation.Null()
			}
		}
		if p.ForceIncomplete && t.IsComplete() {
			t[nullable[rng.Intn(len(nullable))]] = relation.Null()
		}
		out.MustInsert(t)
	}
	return out
}
