// Package datagen generates the synthetic stand-ins for the paper's three
// evaluation datasets (Section 6.2):
//
//   - Cars: ~55k tuples extracted from Cars.com with schema (year, make,
//     model, price, mileage, body_style, certified);
//   - Census: ~45k tuples of the UCI "adult" census data;
//   - Complaints: ~200k tuples from the NHTSA defect-investigation
//     repository, joinable with Cars on model.
//
// The generators plant the attribute correlations the paper's techniques
// depend on — Model → Make is exact, Model ⤳ Body Style holds at ≈0.9
// confidence, {Model, Year} ⤳ Price at ≈0.8, Year ⤳ Mileage at ≈0.8,
// Census MaritalStatus/Age ⤳ Relationship, Complaints Model ⤳
// GeneralComponent — with strengths in the ranges the paper reports, so
// AFD mining, NBC learning and query rewriting exercise the same regimes.
//
// Every generator is deterministic given its seed. Each relation carries a
// synthetic id attribute (listing id / ODI number); its AFDs are removed by
// QPIAD's AKey pruning, and evaluation code uses it to match answers to
// ground truth.
package datagen

import (
	"fmt"
	"math/rand"

	"qpiad/internal/relation"
)

// CarModel describes one model's planted correlations.
type CarModel struct {
	Model      string
	Make       string
	Styles     []string  // body styles, dominant first
	StyleProbs []float64 // matching probabilities, sum 1
	BasePrice  int64     // price of a new car, dollars
	Components []string  // complaint general components, dominant first
	// Popularity weights how often the model appears in listings and
	// complaints. Real inventories are heavily skewed (Civics everywhere,
	// 911s rare); the skew is what gives rewritten queries the wide
	// selectivity spread the paper's F-measure ordering exploits.
	Popularity float64
}

// CarModels is the shared model catalog. Make ↔ model is many-models-per-
// make (so Model → Make is a true FD while Make ⤳ Model is weak), and each
// model's dominant body style covers 0.80–1.00 of its listings.
var CarModels = []CarModel{
	{"A4", "Audi", []string{"Sedan", "Convt"}, []float64{0.80, 0.20}, 27000, []string{"Electrical System", "Engine and Engine Cooling"}, 4},
	{"TT", "Audi", []string{"Convt", "Coupe"}, []float64{0.85, 0.15}, 34000, []string{"Electrical System", "Suspension"}, 1.5},
	{"Z4", "BMW", []string{"Convt", "Coupe"}, []float64{0.92, 0.08}, 36000, []string{"Electrical System", "Engine and Engine Cooling"}, 2},
	{"328i", "BMW", []string{"Sedan", "Coupe"}, []float64{0.82, 0.18}, 33000, []string{"Engine and Engine Cooling", "Electrical System"}, 5},
	{"Boxster", "Porsche", []string{"Convt"}, []float64{1}, 43000, []string{"Engine and Engine Cooling", "Suspension"}, 1.5},
	{"911", "Porsche", []string{"Coupe", "Convt"}, []float64{0.75, 0.25}, 70000, []string{"Engine and Engine Cooling", "Brakes"}, 1},
	{"Civic", "Honda", []string{"Sedan", "Coupe"}, []float64{0.85, 0.15}, 15000, []string{"Brakes", "Electrical System"}, 10},
	{"Accord", "Honda", []string{"Sedan", "Coupe"}, []float64{0.90, 0.10}, 20000, []string{"Brakes", "Air Bags"}, 10},
	{"S2000", "Honda", []string{"Convt"}, []float64{1}, 32000, []string{"Suspension", "Brakes"}, 1},
	{"Camry", "Toyota", []string{"Sedan"}, []float64{1}, 19000, []string{"Engine and Engine Cooling", "Air Bags"}, 10},
	{"Corolla", "Toyota", []string{"Sedan"}, []float64{1}, 14000, []string{"Brakes", "Electrical System"}, 9},
	{"Solara", "Toyota", []string{"Convt", "Coupe"}, []float64{0.80, 0.20}, 24000, []string{"Electrical System", "Brakes"}, 2.5},
	{"Miata", "Mazda", []string{"Convt"}, []float64{1}, 22000, []string{"Suspension", "Electrical System"}, 2},
	{"6", "Mazda", []string{"Sedan", "Wagon"}, []float64{0.85, 0.15}, 19000, []string{"Brakes", "Suspension"}, 4},
	{"Mustang", "Ford", []string{"Coupe", "Convt"}, []float64{0.70, 0.30}, 23000, []string{"Engine and Engine Cooling", "Electrical System"}, 5},
	{"F150", "Ford", []string{"Truck"}, []float64{1}, 25000, []string{"Electrical System", "Engine and Engine Cooling"}, 9},
	{"Focus", "Ford", []string{"Sedan", "Wagon"}, []float64{0.80, 0.20}, 14000, []string{"Electrical System", "Brakes"}, 7},
	{"Grand Cherokee", "Jeep", []string{"SUV"}, []float64{1}, 28000, []string{"Engine and Engine Cooling", "Electrical System"}, 5},
	{"Wrangler", "Jeep", []string{"SUV", "Convt"}, []float64{0.85, 0.15}, 22000, []string{"Suspension", "Engine and Engine Cooling"}, 3},
	{"Impala", "Chevrolet", []string{"Sedan"}, []float64{1}, 21000, []string{"Air Bags", "Electrical System"}, 6},
	{"Corvette", "Chevrolet", []string{"Convt", "Coupe"}, []float64{0.60, 0.40}, 45000, []string{"Engine and Engine Cooling", "Brakes"}, 1.5},
	{"Tahoe", "Chevrolet", []string{"SUV"}, []float64{1}, 33000, []string{"Brakes", "Engine and Engine Cooling"}, 5},
	{"Jetta", "Volkswagen", []string{"Sedan", "Wagon"}, []float64{0.85, 0.15}, 17000, []string{"Electrical System", "Engine and Engine Cooling"}, 6},
	{"Beetle", "Volkswagen", []string{"Coupe", "Convt"}, []float64{0.75, 0.25}, 17000, []string{"Electrical System", "Suspension"}, 3},
	{"9-3", "Saab", []string{"Convt", "Sedan"}, []float64{0.55, 0.45}, 26000, []string{"Electrical System", "Engine and Engine Cooling"}, 1.5},
	{"XK8", "Jaguar", []string{"Convt", "Coupe"}, []float64{0.65, 0.35}, 55000, []string{"Electrical System", "Engine and Engine Cooling"}, 1},
	{"SL500", "Mercedes-Benz", []string{"Convt"}, []float64{1}, 60000, []string{"Suspension", "Electrical System"}, 1},
	{"C240", "Mercedes-Benz", []string{"Sedan", "Wagon"}, []float64{0.88, 0.12}, 30000, []string{"Electrical System", "Brakes"}, 3},
	{"Outback", "Subaru", []string{"Wagon", "Sedan"}, []float64{0.85, 0.15}, 22000, []string{"Engine and Engine Cooling", "Suspension"}, 4},
	{"Altima", "Nissan", []string{"Sedan"}, []float64{1}, 18000, []string{"Engine and Engine Cooling", "Electrical System"}, 7},
}

// trimSpec expands each catalog model into trim-level variants, matching
// how real listing sites distinguish "Civic", "Civic LX" and "Civic EX".
// Trims inherit the base model's make, body-style distribution and
// complaint profile; they differ in popularity share and price. The
// expansion triples the model domain (90 models), giving rewritten queries
// the wide determining-set-value spread the paper's 416-model crawl had.
type trimSpec struct {
	suffix   string
	popShare float64
	priceAdd int64
}

var trims = []trimSpec{
	{"", 0.50, 0},
	{" LX", 0.30, 1500},
	{" EX", 0.20, 3000},
}

// ExpandedModels is the trim-level catalog actually used by the
// generators. CarModels remains the base catalog (its names all appear in
// ExpandedModels, so probe seeds built from it stay valid).
var ExpandedModels = func() []CarModel {
	out := make([]CarModel, 0, len(CarModels)*len(trims))
	for _, m := range CarModels {
		for _, tr := range trims {
			v := m
			v.Model = m.Model + tr.suffix
			v.BasePrice = m.BasePrice + tr.priceAdd
			v.Popularity = m.Popularity * tr.popShare
			out = append(out, v)
		}
	}
	return out
}()

// modelCDF is the cumulative popularity distribution over ExpandedModels.
var modelCDF = func() []float64 {
	cdf := make([]float64, len(ExpandedModels))
	sum := 0.0
	for i, m := range ExpandedModels {
		sum += m.Popularity
		cdf[i] = sum
	}
	return cdf
}()

// pickModel draws a model by popularity.
func pickModel(rng *rand.Rand) CarModel {
	u := rng.Float64() * modelCDF[len(modelCDF)-1]
	for i, c := range modelCDF {
		if u < c {
			return ExpandedModels[i]
		}
	}
	return ExpandedModels[len(ExpandedModels)-1]
}

// CarsSchema is the paper's Cars schema plus a synthetic listing id.
func CarsSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "id", Kind: relation.KindInt},
		relation.Attribute{Name: "year", Kind: relation.KindInt},
		relation.Attribute{Name: "make", Kind: relation.KindString},
		relation.Attribute{Name: "model", Kind: relation.KindString},
		relation.Attribute{Name: "price", Kind: relation.KindInt},
		relation.Attribute{Name: "mileage", Kind: relation.KindInt},
		relation.Attribute{Name: "body_style", Kind: relation.KindString},
		relation.Attribute{Name: "certified", Kind: relation.KindString},
	)
}

// Cars generates n complete car tuples.
//
// Planted structure: model → make exactly; model ⤳ body_style at each
// model's dominant-style probability; {model, year} ⤳ price at ≈0.8 (price
// is the depreciated base price rounded to $500, with noise 20% of the
// time); year ⤳ mileage at ≈0.8 (12k miles per year rounded to 5k, with
// noise); year ⤳ certified at ≈0.85 (cars under 3 years are certified).
func Cars(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New("cars", CarsSchema())
	r.Grow(n)
	for i := 0; i < n; i++ {
		m := pickModel(rng)
		year := 1996 + rng.Intn(10) // 1996–2005
		age := 2006 - year

		style := pick(rng, m.Styles, m.StyleProbs)

		price := float64(m.BasePrice)
		for a := 0; a < age; a++ {
			price *= 0.88
		}
		if rng.Float64() < 0.20 {
			price *= 1 - 0.05*float64(1+rng.Intn(3))
		}
		priceI := (int64(price) / 500) * 500

		mileage := int64(age) * 12000
		if rng.Float64() < 0.20 {
			mileage += int64(rng.Intn(5)-2) * 5000
			if mileage < 0 {
				mileage = 0
			}
		}
		mileage = (mileage / 5000) * 5000

		certified := "no"
		if age <= 3 {
			certified = "yes"
		}
		if rng.Float64() < 0.15 {
			if certified == "yes" {
				certified = "no"
			} else {
				certified = "yes"
			}
		}

		r.MustInsert(relation.Tuple{
			relation.Int(int64(i)),
			relation.Int(int64(year)),
			relation.String(m.Make),
			relation.String(m.Model),
			relation.Int(priceI),
			relation.Int(mileage),
			relation.String(style),
			relation.String(certified),
		})
	}
	return r
}

// pick draws a value from a discrete distribution.
func pick(rng *rand.Rand, vals []string, probs []float64) string {
	u := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u < acc {
			return vals[i]
		}
	}
	return vals[len(vals)-1]
}

// Hidden records one nulled cell and its ground-truth value.
type Hidden struct {
	// ID is the tuple's id attribute value (not its position).
	ID int64
	// Attr is the nulled attribute.
	Attr string
	// Value is the ground-truth value.
	Value relation.Value
}

// MakeIncomplete implements the paper's experimental-dataset protocol:
// each tuple independently becomes incomplete with probability frac by
// nulling one uniformly random attribute (never the id). It returns the
// incomplete copy and the hidden cells.
func MakeIncomplete(gd *relation.Relation, frac float64, seed int64) (*relation.Relation, []Hidden) {
	rng := rand.New(rand.NewSource(seed))
	var attrs []string
	for _, a := range gd.Schema.Names() {
		if a != "id" && a != "cid" {
			attrs = append(attrs, a)
		}
	}
	return makeIncompleteOver(gd, attrs, frac, rng)
}

// MakeIncompleteAttr nulls only the named attribute in frac of the tuples.
func MakeIncompleteAttr(gd *relation.Relation, attr string, frac float64, seed int64) (*relation.Relation, []Hidden) {
	rng := rand.New(rand.NewSource(seed))
	return makeIncompleteOver(gd, []string{attr}, frac, rng)
}

func makeIncompleteOver(gd *relation.Relation, attrs []string, frac float64, rng *rand.Rand) (*relation.Relation, []Hidden) {
	ed := gd.Clone()
	idCol := idColumn(gd.Schema)
	var hidden []Hidden
	for i := 0; i < ed.Len(); i++ {
		if rng.Float64() >= frac {
			continue
		}
		attr := attrs[rng.Intn(len(attrs))]
		col := ed.Schema.MustIndex(attr)
		t := ed.Tuple(i)
		if t[col].IsNull() {
			continue
		}
		var id int64 = int64(i)
		if idCol >= 0 {
			id = t[idCol].IntVal()
		}
		hidden = append(hidden, Hidden{ID: id, Attr: attr, Value: t[col]})
		t[col] = relation.Null()
	}
	return ed, hidden
}

// idColumn returns the position of the id-like column, or -1.
func idColumn(s *relation.Schema) int {
	for _, name := range []string{"id", "cid"} {
		if i, ok := s.Index(name); ok {
			return i
		}
	}
	return -1
}

// HiddenIndex arranges hidden cells for O(1) relevance lookup:
// id -> attr -> ground-truth value.
func HiddenIndex(hidden []Hidden) map[int64]map[string]relation.Value {
	out := make(map[int64]map[string]relation.Value, len(hidden))
	for _, h := range hidden {
		m := out[h.ID]
		if m == nil {
			m = make(map[string]relation.Value, 1)
			out[h.ID] = m
		}
		m[h.Attr] = h.Value
	}
	return out
}

// Split partitions a relation into a training sample (the mediator's probed
// sample) of trainFrac and the test remainder (the "autonomous database"),
// per Section 6.2.
func Split(ed *relation.Relation, trainFrac float64, seed int64) (train, test *relation.Relation, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("datagen: trainFrac %v outside (0,1)", trainFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(ed.Len())
	nTrain := int(float64(ed.Len()) * trainFrac)
	if nTrain < 1 {
		nTrain = 1
	}
	train = relation.New(ed.Name+"_train", ed.Schema)
	test = relation.New(ed.Name+"_test", ed.Schema)
	for i, p := range perm {
		t := ed.Tuple(p).Clone()
		if i < nTrain {
			train.MustInsert(t)
		} else {
			test.MustInsert(t)
		}
	}
	return train, test, nil
}
