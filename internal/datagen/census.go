package datagen

import (
	"math/rand"

	"qpiad/internal/relation"
)

// CensusSchema is the paper's 12-attribute Census (UCI adult) schema plus a
// synthetic record id.
func CensusSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "id", Kind: relation.KindInt},
		relation.Attribute{Name: "age", Kind: relation.KindInt}, // bucketed to 5 years
		relation.Attribute{Name: "workclass", Kind: relation.KindString},
		relation.Attribute{Name: "education", Kind: relation.KindString},
		relation.Attribute{Name: "marital_status", Kind: relation.KindString},
		relation.Attribute{Name: "occupation", Kind: relation.KindString},
		relation.Attribute{Name: "relationship", Kind: relation.KindString},
		relation.Attribute{Name: "race", Kind: relation.KindString},
		relation.Attribute{Name: "sex", Kind: relation.KindString},
		relation.Attribute{Name: "capital_gain", Kind: relation.KindInt},
		relation.Attribute{Name: "capital_loss", Kind: relation.KindInt},
		relation.Attribute{Name: "hours_per_week", Kind: relation.KindInt},
		relation.Attribute{Name: "native_country", Kind: relation.KindString},
	)
}

// persona couples marital status with its typical relationship roles and
// age range — the planted marital_status ⤳ relationship correlation
// (≈0.85) that drives the paper's Census query σ(relationship=Own-child).
type persona struct {
	marital   string
	relations []string
	relProbs  []float64
	ageLo     int
	ageHi     int
	weight    float64
}

var personas = []persona{
	{"Never-married", []string{"Own-child", "Not-in-family", "Unmarried"}, []float64{0.60, 0.30, 0.10}, 15, 35, 0.33},
	{"Married-civ-spouse", []string{"Husband", "Wife"}, []float64{0.60, 0.40}, 25, 70, 0.45},
	{"Divorced", []string{"Not-in-family", "Unmarried", "Own-child"}, []float64{0.55, 0.40, 0.05}, 30, 70, 0.14},
	{"Widowed", []string{"Not-in-family", "Unmarried"}, []float64{0.60, 0.40}, 55, 90, 0.05},
	{"Separated", []string{"Unmarried", "Not-in-family"}, []float64{0.60, 0.40}, 25, 60, 0.03},
}

// eduJob plants the education ⤳ occupation correlation (≈0.6).
type eduJob struct {
	education string
	jobs      []string
	jobProbs  []float64
	weight    float64
}

var eduJobs = []eduJob{
	{"HS-grad", []string{"Craft-repair", "Transport-moving", "Handlers-cleaners", "Sales"}, []float64{0.45, 0.25, 0.15, 0.15}, 0.32},
	{"Some-college", []string{"Adm-clerical", "Sales", "Craft-repair", "Tech-support"}, []float64{0.40, 0.25, 0.20, 0.15}, 0.22},
	{"Bachelors", []string{"Prof-specialty", "Exec-managerial", "Sales", "Adm-clerical"}, []float64{0.40, 0.30, 0.15, 0.15}, 0.17},
	{"Masters", []string{"Prof-specialty", "Exec-managerial"}, []float64{0.65, 0.35}, 0.06},
	{"Doctorate", []string{"Prof-specialty"}, []float64{1}, 0.02},
	{"11th", []string{"Handlers-cleaners", "Other-service", "Craft-repair"}, []float64{0.40, 0.35, 0.25}, 0.08},
	{"Assoc-voc", []string{"Tech-support", "Craft-repair", "Adm-clerical"}, []float64{0.40, 0.35, 0.25}, 0.13},
}

var (
	workclasses    = []string{"Private", "Self-emp-not-inc", "Local-gov", "State-gov", "Federal-gov"}
	workclassProbs = []float64{0.70, 0.10, 0.08, 0.07, 0.05}
	races          = []string{"White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"}
	raceProbs      = []float64{0.85, 0.09, 0.03, 0.02, 0.01}
	countries      = []string{"United-States", "Mexico", "Philippines", "Germany", "Canada"}
	countryProbs   = []float64{0.90, 0.04, 0.02, 0.02, 0.02}
)

// Census generates n complete census tuples.
//
// Planted structure: marital_status ⤳ relationship ≈0.85 (sex refines it
// for married personas: {marital_status, sex} → relationship is nearly
// exact); education ⤳ occupation ≈0.6; age is drawn from the persona's
// range and bucketed to 5 years so age ⤳ relationship is informative;
// hours_per_week and capital gain/loss follow occupation weakly.
func Census(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New("census", CensusSchema())
	r.Grow(n)
	for i := 0; i < n; i++ {
		p := pickPersona(rng)
		sex := "Male"
		if rng.Float64() < 0.48 {
			sex = "Female"
		}
		rel := pick(rng, p.relations, p.relProbs)
		if p.marital == "Married-civ-spouse" {
			// Planted near-FD: {marital_status, sex} → relationship.
			rel = "Husband"
			if sex == "Female" {
				rel = "Wife"
			}
			if rng.Float64() < 0.05 {
				rel = "Not-in-family"
			}
		}
		age := p.ageLo + rng.Intn(p.ageHi-p.ageLo+1)
		if rel == "Own-child" && age > 30 {
			age = 15 + rng.Intn(16)
		}
		age = (age / 5) * 5

		ej := pickEduJob(rng)
		job := pick(rng, ej.jobs, ej.jobProbs)

		hours := 40
		switch job {
		case "Exec-managerial", "Prof-specialty":
			hours = 40 + 5*rng.Intn(4)
		case "Handlers-cleaners", "Other-service":
			hours = 25 + 5*rng.Intn(5)
		default:
			hours = 35 + 5*rng.Intn(3)
		}
		gain, loss := 0, 0
		if rng.Float64() < 0.08 {
			gain = 1000 * (1 + rng.Intn(15))
		} else if rng.Float64() < 0.05 {
			loss = 500 * (1 + rng.Intn(4))
		}

		r.MustInsert(relation.Tuple{
			relation.Int(int64(i)),
			relation.Int(int64(age)),
			relation.String(pick(rng, workclasses, workclassProbs)),
			relation.String(ej.education),
			relation.String(p.marital),
			relation.String(job),
			relation.String(rel),
			relation.String(pick(rng, races, raceProbs)),
			relation.String(sex),
			relation.Int(int64(gain)),
			relation.Int(int64(loss)),
			relation.Int(int64(hours)),
			relation.String(pick(rng, countries, countryProbs)),
		})
	}
	return r
}

func pickPersona(rng *rand.Rand) persona {
	u := rng.Float64()
	acc := 0.0
	for _, p := range personas {
		acc += p.weight
		if u < acc {
			return p
		}
	}
	return personas[len(personas)-1]
}

func pickEduJob(rng *rand.Rand) eduJob {
	u := rng.Float64()
	acc := 0.0
	for _, e := range eduJobs {
		acc += e.weight
		if u < acc {
			return e
		}
	}
	return eduJobs[len(eduJobs)-1]
}
