package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"qpiad/internal/relation"
)

// ComplaintsSchema is the paper's Consumer Complaints schema (NHTSA ODI)
// plus a synthetic complaint id. The model attribute shares its domain with
// the Cars dataset, enabling Cars ⋈(model) Complaints joins.
func ComplaintsSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "cid", Kind: relation.KindInt},
		relation.Attribute{Name: "model", Kind: relation.KindString},
		relation.Attribute{Name: "year", Kind: relation.KindInt},
		relation.Attribute{Name: "crash", Kind: relation.KindString},
		relation.Attribute{Name: "fail_date", Kind: relation.KindString},
		relation.Attribute{Name: "fire", Kind: relation.KindString},
		relation.Attribute{Name: "general_component", Kind: relation.KindString},
		relation.Attribute{Name: "detailed_component", Kind: relation.KindString},
		relation.Attribute{Name: "country", Kind: relation.KindString},
		relation.Attribute{Name: "ownership", Kind: relation.KindString},
		relation.Attribute{Name: "car_type", Kind: relation.KindString},
		relation.Attribute{Name: "market", Kind: relation.KindString},
	)
}

// detailedComponents plants the near-FD general_component →
// detailed_component (each general component has a dominant detail at 0.8).
var detailedComponents = map[string][]string{
	"Electrical System":         {"Wiring", "Ignition", "Battery"},
	"Engine and Engine Cooling": {"Cooling System", "Engine Block", "Belts"},
	"Brakes":                    {"Hydraulic", "ABS", "Pads"},
	"Suspension":                {"Front Control Arm", "Shock Absorber", "Springs"},
	"Air Bags":                  {"Frontal", "Side", "Sensor"},
}

// Complaints generates n complaint tuples over the shared car-model domain.
//
// Planted structure: model ⤳ general_component ≈0.8 (each model's dominant
// failure mode); general_component ⤳ detailed_component ≈0.8; crash/fire
// correlate with the component (brake complaints crash more, electrical
// complaints catch fire more); model → car_type is exact (derived from the
// model's body styles); fail_date follows year.
func Complaints(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New("complaints", ComplaintsSchema())
	r.Grow(n)
	for i := 0; i < n; i++ {
		m := pickModel(rng) // complaint volume follows fleet size
		comp := m.Components[0]
		if rng.Float64() >= 0.80 {
			comp = m.Components[1]
		}
		details := detailedComponents[comp]
		detail := details[0]
		if u := rng.Float64(); u >= 0.80 {
			detail = details[1+rng.Intn(len(details)-1)]
		}

		crash := "no"
		crashP := 0.05
		if comp == "Brakes" {
			crashP = 0.30
		}
		if rng.Float64() < crashP {
			crash = "yes"
		}
		fire := "no"
		fireP := 0.02
		if comp == "Electrical System" {
			fireP = 0.15
		}
		if rng.Float64() < fireP {
			fire = "yes"
		}

		year := 1996 + rng.Intn(10)
		failYear := year + 1 + rng.Intn(3)
		failDate := fmt.Sprintf("%04d-%02d", failYear, 1+rng.Intn(12))

		ownership := "consumer"
		if rng.Float64() < 0.1 {
			ownership = "fleet"
		}

		r.MustInsert(relation.Tuple{
			relation.Int(int64(i)),
			relation.String(m.Model),
			relation.Int(int64(year)),
			relation.String(crash),
			relation.String(failDate),
			relation.String(fire),
			relation.String(comp),
			relation.String(detail),
			relation.String("United States"),
			relation.String(ownership),
			relation.String(carType(m)),
			relation.String("domestic"),
		})
	}
	return r
}

// RecallsSchema describes the safety-recall campaigns dataset used by the
// multi-way join extension: recalls chain to complaints on the component
// attribute (cars ⋈model complaints ⋈component recalls).
func RecallsSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "rid", Kind: relation.KindInt},
		relation.Attribute{Name: "component", Kind: relation.KindString},
		relation.Attribute{Name: "year", Kind: relation.KindInt},
		relation.Attribute{Name: "severity", Kind: relation.KindString},
		relation.Attribute{Name: "units_affected", Kind: relation.KindInt},
		relation.Attribute{Name: "remedy", Kind: relation.KindString},
	)
}

// recallProfiles plants component ⤳ severity (≈0.8) and component ⤳
// remedy (≈0.85).
var recallProfiles = map[string]struct {
	severity [2]string
	remedy   [2]string
}{
	"Electrical System":         {[2]string{"moderate", "severe"}, [2]string{"rewire", "replace"}},
	"Engine and Engine Cooling": {[2]string{"severe", "moderate"}, [2]string{"replace", "inspect"}},
	"Brakes":                    {[2]string{"severe", "critical"}, [2]string{"replace", "inspect"}},
	"Suspension":                {[2]string{"moderate", "minor"}, [2]string{"inspect", "replace"}},
	"Air Bags":                  {[2]string{"critical", "severe"}, [2]string{"replace", "rewire"}},
}

// Recalls generates n recall campaigns over the shared component domain.
func Recalls(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	components := make([]string, 0, len(recallProfiles))
	for c := range recallProfiles {
		components = append(components, c)
	}
	sort.Strings(components)
	r := relation.New("recalls", RecallsSchema())
	r.Grow(n)
	for i := 0; i < n; i++ {
		comp := components[rng.Intn(len(components))]
		prof := recallProfiles[comp]
		severity := prof.severity[0]
		if rng.Float64() >= 0.8 {
			severity = prof.severity[1]
		}
		remedy := prof.remedy[0]
		if rng.Float64() >= 0.85 {
			remedy = prof.remedy[1]
		}
		r.MustInsert(relation.Tuple{
			relation.Int(int64(i)),
			relation.String(comp),
			relation.Int(int64(1996 + rng.Intn(10))),
			relation.String(severity),
			relation.Int(int64(1000 * (1 + rng.Intn(500)))),
			relation.String(remedy),
		})
	}
	return r
}

// carType derives the vehicle class from a model's dominant body style
// (an exact model → car_type FD).
func carType(m CarModel) string {
	switch m.Styles[0] {
	case "Truck":
		return "truck"
	case "SUV":
		return "suv"
	default:
		return "passenger"
	}
}
