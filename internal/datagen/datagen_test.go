package datagen

import (
	"math"
	"math/rand"
	"testing"

	"qpiad/internal/afd"
)

func TestCarsShape(t *testing.T) {
	r := Cars(5000, 1)
	if r.Len() != 5000 {
		t.Fatalf("Len = %d", r.Len())
	}
	for _, tu := range r.Tuples() {
		if !tu.IsComplete() {
			t.Fatal("ground truth must be complete")
		}
	}
	// Domains look sane: the trim-expanded catalog appears (rarest trims
	// may be absent at this size, but at least the base catalog's worth of
	// distinct models must show up, and no model outside the catalog).
	models := r.Domain("model")
	if len(models) < len(CarModels) || len(models) > len(ExpandedModels) {
		t.Errorf("models in data = %d, want within [%d, %d]", len(models), len(CarModels), len(ExpandedModels))
	}
	known := map[string]bool{}
	for _, m := range ExpandedModels {
		known[m.Model] = true
	}
	for _, v := range models {
		if !known[v.Str()] {
			t.Errorf("unknown model %q generated", v.Str())
		}
	}
	if got := len(r.Domain("body_style")); got < 5 {
		t.Errorf("body styles = %d", got)
	}
	years := r.Domain("year")
	for _, y := range years {
		if y.IntVal() < 1996 || y.IntVal() > 2005 {
			t.Errorf("year out of range: %v", y)
		}
	}
}

func TestCarsDeterministic(t *testing.T) {
	a, b := Cars(500, 7), Cars(500, 7)
	for i := 0; i < a.Len(); i++ {
		if !a.Tuple(i).Equal(b.Tuple(i)) {
			t.Fatal("same seed must generate identical data")
		}
	}
	c := Cars(500, 8)
	same := true
	for i := 0; i < a.Len(); i++ {
		if !a.Tuple(i).Equal(c.Tuple(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

// TestPlantedCarCorrelations verifies that mining recovers the dependencies
// the generator plants, at roughly the planted strengths.
func TestPlantedCarCorrelations(t *testing.T) {
	r := Cars(8000, 2)
	// model -> make is exact.
	if g3, n := afd.G3(r, []string{"model"}, "make"); g3 != 0 || n != r.Len() {
		t.Errorf("g3(model->make) = %v over %d", g3, n)
	}
	// model ~> body_style around 0.85 (catalog average of dominant probs).
	g3bs, _ := afd.G3(r, []string{"model"}, "body_style")
	if conf := 1 - g3bs; conf < 0.78 || conf > 0.95 {
		t.Errorf("conf(model~>body_style) = %v, want ≈0.85", conf)
	}
	// {model, year} ~> price around 0.8.
	g3p, _ := afd.G3(r, []string{"model", "year"}, "price")
	if conf := 1 - g3p; conf < 0.7 || conf > 0.92 {
		t.Errorf("conf(model,year~>price) = %v, want ≈0.8", conf)
	}
	// year ~> mileage around 0.8.
	g3m, _ := afd.G3(r, []string{"year"}, "mileage")
	if conf := 1 - g3m; conf < 0.7 || conf > 0.92 {
		t.Errorf("conf(year~>mileage) = %v, want ≈0.8", conf)
	}
	// Full mining finds a usable AFD for body_style.
	res := afd.Mine(r.Sample(1000, rng(3)), afd.Config{MinSupport: 5})
	if best, ok := res.Best("body_style"); !ok || best.Confidence < 0.7 {
		t.Errorf("mined best body_style AFD = %v, ok=%v", best, ok)
	}
}

func TestCensusShape(t *testing.T) {
	r := Census(5000, 1)
	if r.Len() != 5000 {
		t.Fatalf("Len = %d", r.Len())
	}
	rel := r.Domain("relationship")
	found := false
	for _, v := range rel {
		if v.Str() == "Own-child" {
			found = true
		}
	}
	if !found {
		t.Error("Own-child missing from relationship domain (needed for Figure 4)")
	}
	// marital_status ~> relationship planted at >= 0.55.
	g3r, _ := afd.G3(r, []string{"marital_status"}, "relationship")
	if conf := 1 - g3r; conf < 0.55 {
		t.Errorf("conf(marital~>relationship) = %v", conf)
	}
	// {marital_status, sex} is distinctly better (near-FD for married).
	g3rs, _ := afd.G3(r, []string{"marital_status", "sex"}, "relationship")
	if (1 - g3rs) <= (1 - g3r) {
		t.Error("adding sex should strengthen the relationship dependency")
	}
	// education ~> occupation moderately informative.
	g3o, _ := afd.G3(r, []string{"education"}, "occupation")
	if conf := 1 - g3o; conf < 0.35 || conf > 0.8 {
		t.Errorf("conf(education~>occupation) = %v, want moderate", conf)
	}
}

func TestComplaintsShape(t *testing.T) {
	r := Complaints(5000, 1)
	if r.Len() != 5000 {
		t.Fatalf("Len = %d", r.Len())
	}
	// model ~> general_component ≈ 0.8.
	g3c, _ := afd.G3(r, []string{"model"}, "general_component")
	if conf := 1 - g3c; conf < 0.7 || conf > 0.9 {
		t.Errorf("conf(model~>component) = %v", conf)
	}
	// Shared model domain with Cars.
	cars := Cars(2000, 2)
	carModels := map[string]bool{}
	for _, v := range cars.Domain("model") {
		carModels[v.Str()] = true
	}
	for _, v := range r.Domain("model") {
		if !carModels[v.Str()] {
			t.Errorf("complaint model %q not in Cars domain", v.Str())
		}
	}
	// model -> car_type exact.
	if g3, _ := afd.G3(r, []string{"model"}, "car_type"); g3 != 0 {
		t.Errorf("g3(model->car_type) = %v", g3)
	}
}

func TestRecallsShape(t *testing.T) {
	r := Recalls(3000, 1)
	if r.Len() != 3000 {
		t.Fatalf("Len = %d", r.Len())
	}
	// component ~> severity ≈ 0.8 planted.
	g3s, _ := afd.G3(r, []string{"component"}, "severity")
	if conf := 1 - g3s; conf < 0.7 || conf > 0.9 {
		t.Errorf("conf(component~>severity) = %v", conf)
	}
	// Component domain matches the complaints domain (join compatibility).
	comp := Complaints(3000, 2)
	compDomain := map[string]bool{}
	for _, v := range comp.Domain("general_component") {
		compDomain[v.Str()] = true
	}
	for _, v := range r.Domain("component") {
		if !compDomain[v.Str()] {
			t.Errorf("recall component %q not in complaints domain", v.Str())
		}
	}
	// Deterministic.
	r2 := Recalls(100, 7)
	r3 := Recalls(100, 7)
	for i := 0; i < r2.Len(); i++ {
		if !r2.Tuple(i).Equal(r3.Tuple(i)) {
			t.Fatal("Recalls not deterministic")
		}
	}
}

func TestMakeIncomplete(t *testing.T) {
	gd := Cars(4000, 3)
	ed, hidden := MakeIncomplete(gd, 0.10, 4)
	if ed.Len() != gd.Len() {
		t.Fatal("MakeIncomplete must preserve cardinality")
	}
	frac := ed.IncompleteFraction()
	if math.Abs(frac-0.10) > 0.02 {
		t.Errorf("incomplete fraction = %v, want ≈0.10", frac)
	}
	if len(hidden) == 0 {
		t.Fatal("no hidden cells")
	}
	idx := HiddenIndex(hidden)
	idCol := gd.Schema.MustIndex("id")
	for i := 0; i < ed.Len(); i++ {
		tu := ed.Tuple(i)
		nulls := tu.NullAttrs(ed.Schema)
		if len(nulls) > 1 {
			t.Fatalf("tuple %d has %d nulls, protocol nulls exactly one", i, len(nulls))
		}
		if len(nulls) == 1 {
			id := tu[idCol].IntVal()
			truth, ok := idx[id][nulls[0]]
			if !ok {
				t.Fatalf("hidden cell not recorded for id %d", id)
			}
			// The truth value matches GD.
			gdCol := gd.Schema.MustIndex(nulls[0])
			if !gd.Tuple(int(id))[gdCol].Identical(truth) {
				t.Fatal("hidden value does not match ground truth")
			}
		}
	}
	// id is never nulled.
	for _, h := range hidden {
		if h.Attr == "id" {
			t.Fatal("id must never be hidden")
		}
	}
	// GD untouched.
	for _, tu := range gd.Tuples() {
		if !tu.IsComplete() {
			t.Fatal("MakeIncomplete mutated the ground truth")
		}
	}
}

func TestMakeIncompleteAttr(t *testing.T) {
	gd := Cars(2000, 5)
	ed, hidden := MakeIncompleteAttr(gd, "body_style", 0.10, 6)
	for _, h := range hidden {
		if h.Attr != "body_style" {
			t.Fatalf("hidden attr = %q", h.Attr)
		}
	}
	if f := ed.NullFraction("body_style"); math.Abs(f-0.10) > 0.02 {
		t.Errorf("body_style null fraction = %v", f)
	}
	if ed.NullFraction("make") != 0 {
		t.Error("other attributes must stay complete")
	}
}

func TestSplit(t *testing.T) {
	gd := Cars(1000, 7)
	train, test, err := Split(gd, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 100 || test.Len() != 900 {
		t.Errorf("split sizes = %d/%d", train.Len(), test.Len())
	}
	// Disjoint by id.
	ids := map[int64]bool{}
	idCol := gd.Schema.MustIndex("id")
	for _, tu := range train.Tuples() {
		ids[tu[idCol].IntVal()] = true
	}
	for _, tu := range test.Tuples() {
		if ids[tu[idCol].IntVal()] {
			t.Fatal("train/test overlap")
		}
	}
	if _, _, err := Split(gd, 0, 1); err == nil {
		t.Error("trainFrac 0 should error")
	}
	if _, _, err := Split(gd, 1, 1); err == nil {
		t.Error("trainFrac 1 should error")
	}
}

func TestWebProfiles(t *testing.T) {
	gd := WebCars(8000, 9)
	cases := []struct {
		p          WebProfile
		wantIncmp  float64
		wantBody   float64
		wantEngine float64
		tol        float64
	}{
		{AutoTraderProfile, 0.3367, 0.036, 0.081, 0.05},
		{CarsDirectProfile, 0.9874, 0.557, 0.558, 0.05},
		{GoogleBaseProfile, 1.0, 0.8336, 0.9198, 0.05},
	}
	for _, c := range cases {
		ed := ApplyProfile(gd, c.p, 10)
		if got := ed.IncompleteFraction(); math.Abs(got-c.wantIncmp) > c.tol {
			t.Errorf("%s incomplete = %v, want ≈%v", c.p.Name, got, c.wantIncmp)
		}
		if got := ed.NullFraction("body_style"); math.Abs(got-c.wantBody) > c.tol {
			t.Errorf("%s body_style nulls = %v, want ≈%v", c.p.Name, got, c.wantBody)
		}
		if got := ed.NullFraction("engine"); math.Abs(got-c.wantEngine) > c.tol {
			t.Errorf("%s engine nulls = %v, want ≈%v", c.p.Name, got, c.wantEngine)
		}
	}
}

func TestGoogleBaseFullyIncomplete(t *testing.T) {
	gd := WebCars(3000, 11)
	ed := ApplyProfile(gd, GoogleBaseProfile, 12)
	for _, tu := range ed.Tuples() {
		if tu.IsComplete() {
			t.Fatal("GoogleBase profile must leave no complete tuples")
		}
	}
}

// rng returns a fresh seeded generator for tests.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
