// Scenario definition and generation: the scripted fault schedule a chaos
// run executes. Scenarios are either loaded from a JSON file or generated
// deterministically from a seed; either way the resolved schedule is part
// of the run's deterministic report section, so two runs with the same
// inputs produce byte-identical schedules.
package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"qpiad/internal/faults"
)

// Action is one kind of scripted chaos event.
type Action string

const (
	// ActSourceCrash makes every source query attempt fail transiently
	// (TransientRate 1) — the source is down but answers fast.
	ActSourceCrash Action = "source_crash"
	// ActSourceHang makes every source query attempt time out
	// (TimeoutRate 1) — the source is up but never answers.
	ActSourceHang Action = "source_hang"
	// ActSourceRestore reinstates the source's baseline fault profile.
	ActSourceRestore Action = "source_restore"
	// ActFaultsFlap swaps in a scripted FlapUp/FlapDown profile: the
	// source alternates serving and failing on a fixed attempt cadence.
	ActFaultsFlap Action = "faults_flap"
	// ActServerKill closes the HTTP server abruptly: the listener dies
	// and every open connection is cut mid-flight.
	ActServerKill Action = "server_kill"
	// ActServerDrain begins a graceful drain: /readyz flips to 503, then
	// the server shuts down letting in-flight requests finish.
	ActServerDrain Action = "server_drain"
	// ActServerRestart rebinds the recorded port and serves again with
	// the same handler (counters and caches survive, as a process-level
	// supervisor restart of the listener would).
	ActServerRestart Action = "server_restart"
	// ActKnowledgeCorrupt corrupts the on-disk knowledge file in place
	// (a byte flip inside the payload), simulating bit rot or a torn
	// copy. The live mediator keeps its in-memory knowledge.
	ActKnowledgeCorrupt Action = "knowledge_corrupt"
	// ActKnowledgeReload reloads knowledge from disk and re-registers it,
	// the hot-reload path. Loading a file corrupted since the last good
	// write MUST fail — silently accepting it is a soundness violation;
	// the event then restores the good file and reloads that.
	ActKnowledgeReload Action = "knowledge_reload"
	// ActClockSkew jumps the mediator's injected clock forward by SkewMs,
	// expiring answer-cache entries en masse.
	ActClockSkew Action = "clock_skew"
)

// knownActions is the validation set.
var knownActions = map[Action]bool{
	ActSourceCrash: true, ActSourceHang: true, ActSourceRestore: true,
	ActFaultsFlap: true, ActServerKill: true, ActServerDrain: true,
	ActServerRestart: true, ActKnowledgeCorrupt: true,
	ActKnowledgeReload: true, ActClockSkew: true,
}

// Event is one scheduled chaos action. AtMs is the offset from the end of
// the warmup phase.
type Event struct {
	AtMs   int64  `json:"at_ms"`
	Action Action `json:"action"`
	// Source names the target source for source_* and faults_flap events;
	// empty means the run's single default source.
	Source string `json:"source,omitempty"`
	// SkewMs is the clock jump for clock_skew events.
	SkewMs int64 `json:"skew_ms,omitempty"`
	// FlapUp/FlapDown configure faults_flap (attempts served / attempts
	// failed per cycle).
	FlapUp   int `json:"flap_up,omitempty"`
	FlapDown int `json:"flap_down,omitempty"`
}

// Scenario is a named, scripted fault schedule.
type Scenario struct {
	Name string `json:"name"`
	// DurationMs is the scripted window length; every event must fall in
	// [0, DurationMs). The run keeps probing through a recovery window
	// after it.
	DurationMs int64   `json:"duration_ms"`
	Events     []Event `json:"events"`
}

// Validate checks the schedule is well-formed: known actions, events in
// order and inside the window, server kills/drains alternating with
// restarts (a second kill while down would target nothing), and flap
// events carrying a schedule.
func (s *Scenario) Validate() error {
	if s.DurationMs <= 0 {
		return fmt.Errorf("chaos: scenario %q: duration_ms must be positive", s.Name)
	}
	down := false
	last := int64(-1)
	for i, e := range s.Events {
		if !knownActions[e.Action] {
			return fmt.Errorf("chaos: scenario %q event %d: unknown action %q", s.Name, i, e.Action)
		}
		if e.AtMs < 0 || e.AtMs >= s.DurationMs {
			return fmt.Errorf("chaos: scenario %q event %d (%s): at_ms %d outside [0, %d)", s.Name, i, e.Action, e.AtMs, s.DurationMs)
		}
		if e.AtMs < last {
			return fmt.Errorf("chaos: scenario %q event %d (%s): events must be sorted by at_ms", s.Name, i, e.Action)
		}
		last = e.AtMs
		switch e.Action {
		case ActServerKill, ActServerDrain:
			if down {
				return fmt.Errorf("chaos: scenario %q event %d: %s while the server is already down", s.Name, i, e.Action)
			}
			down = true
		case ActServerRestart:
			if !down {
				return fmt.Errorf("chaos: scenario %q event %d: server_restart while the server is up", s.Name, i)
			}
			down = false
		case ActFaultsFlap:
			if e.FlapDown <= 0 || e.FlapUp < 0 {
				return fmt.Errorf("chaos: scenario %q event %d: faults_flap needs flap_down > 0", s.Name, i)
			}
		case ActClockSkew:
			if e.SkewMs == 0 {
				return fmt.Errorf("chaos: scenario %q event %d: clock_skew needs skew_ms", s.Name, i)
			}
		}
	}
	if down {
		return fmt.Errorf("chaos: scenario %q: ends with the server down (add a server_restart)", s.Name)
	}
	return nil
}

// LoadScenario reads and validates a scenario JSON file.
func LoadScenario(path string) (*Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: load scenario: %w", err)
	}
	var s Scenario
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("chaos: load scenario %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Generate builds the default full-stack scenario deterministically from a
// seed: a source crash/restore, a fault flap, a knowledge corrupt/reload
// pair, a clock skew, an abrupt server kill and a graceful drain — each
// with seeded jitter on its offset so different seeds exercise different
// interleavings while any one seed replays exactly. Server downtime is
// kept to two short windows so availability stays measurable against a
// tight budget.
func Generate(seed int64, duration time.Duration) *Scenario {
	if duration <= 0 {
		duration = 8 * time.Second
	}
	total := duration.Milliseconds()
	rng := rand.New(rand.NewSource(seed))
	// Lay events out over fractional anchors of the window, jittered by up
	// to 4% of it; downtime gaps (kill->restart, drain->restart) stay
	// fixed-width so the availability budget does not depend on the seed.
	at := func(frac float64) int64 {
		jitter := int64(rng.Float64() * 0.04 * float64(total))
		ms := int64(frac*float64(total)) + jitter
		if ms >= total {
			ms = total - 1
		}
		return ms
	}
	gap := int64(50) // ms of scheduled downtime per bounce
	crash := at(0.05)
	restore := crash + total/10
	kill := at(0.30)
	flap := at(0.45)
	corrupt := at(0.55)
	reload := corrupt + total/20
	skew := at(0.70)
	// The flap ends before the graceful drain: draining under an active
	// fault profile makes Shutdown wait on slow retrying in-flight
	// requests, which is listener downtime — the drain should measure the
	// cost of a clean bounce, the kill already measures the dirty one.
	unflap := at(0.78)
	drain := at(0.86)
	ev := []Event{
		{AtMs: crash, Action: ActSourceCrash},
		{AtMs: restore, Action: ActSourceRestore},
		{AtMs: kill, Action: ActServerKill},
		{AtMs: kill + gap, Action: ActServerRestart},
		{AtMs: flap, Action: ActFaultsFlap, FlapUp: 6, FlapDown: 2},
		{AtMs: corrupt, Action: ActKnowledgeCorrupt},
		{AtMs: reload, Action: ActKnowledgeReload},
		{AtMs: skew, Action: ActClockSkew, SkewMs: int64((30 * time.Minute).Milliseconds())},
		{AtMs: unflap, Action: ActSourceRestore},
		{AtMs: drain, Action: ActServerDrain},
		{AtMs: drain + gap, Action: ActServerRestart},
	}
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].AtMs < ev[j].AtMs })
	return &Scenario{
		Name:       fmt.Sprintf("generated-seed-%d", seed),
		DurationMs: total,
		Events:     ev,
	}
}

// flapProfile derives the scripted flap profile for a faults_flap event
// from the baseline profile, preserving its seed.
func flapProfile(base faults.Profile, e Event) faults.Profile {
	p := base
	p.FlapUp = e.FlapUp
	p.FlapDown = e.FlapDown
	return p
}
