// The blind prober and the degradation-soundness oracle.
//
// The prober issues a fixed, deterministic rotation of selection queries
// at the chaos server for the whole run, recording per-probe availability
// (did the server answer at all), success, and latency. Soundness is
// checked against a fault-free oracle: a second mediator built from the
// identical seeds, served through the same httpapi JSON path so
// serialization differences cannot masquerade as answer differences.
// Faults can only *remove* answers — a failed rewrite drops its possible
// answers, a truncated page drops tuples — so every answer a chaos
// response serves WITHOUT a Degraded or Stale flag must already exist in
// the oracle's answer set for that query. An unflagged answer the oracle
// has never seen is a fabrication: a soundness violation.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// probeQueries is the deterministic probe rotation: every body style (the
// selectivity spread from popular to rare) plus a make and a model
// selection, so the rewriting pipeline and the cache both see repeats.
func probeQueries() []string {
	qs := make([]string, 0, 8)
	for _, bs := range []string{"Sedan", "Convt", "Coupe", "Wagon", "Truck", "SUV"} {
		qs = append(qs, fmt.Sprintf("SELECT * FROM cars WHERE body_style = '%s'", bs))
	}
	qs = append(qs,
		"SELECT * FROM cars WHERE make = 'Honda'",
		"SELECT * FROM cars WHERE model = 'Civic'",
	)
	return qs
}

// probeResponse is the slice of the /query payload the prober reads.
type probeResponse struct {
	Certain  []probeAnswer `json:"certain"`
	Possible []probeAnswer `json:"possible"`
	Unranked []probeAnswer `json:"unranked"`
	Degraded bool          `json:"degraded"`
	Stale    bool          `json:"stale"`
}

type probeAnswer struct {
	Values map[string]any `json:"values"`
}

// answerKey canonicalizes one answer tuple: attribute-sorted "a=v" pairs.
// JSON round-trips numbers as float64 on both sides, so formatting is
// consistent between oracle and chaos responses.
func answerKey(values map[string]any) string {
	attrs := make([]string, 0, len(values))
	for a := range values {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	var b strings.Builder
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%s=%v", a, values[a])
	}
	return b.String()
}

// oracleAnswers maps each probe query to the fault-free answer-key set.
type oracleAnswers map[string]map[string]bool

// collectOracle queries the oracle server for every probe query and
// collects the union of its certain, possible, and unranked answer keys.
func collectOracle(ctx context.Context, client *http.Client, baseURL string, queries []string) (oracleAnswers, error) {
	out := make(oracleAnswers, len(queries))
	for _, q := range queries {
		resp, err := postQuery(ctx, client, baseURL, q, 5*time.Second)
		if err != nil {
			return nil, fmt.Errorf("chaos: oracle query %q: %w", q, err)
		}
		if resp.Degraded || resp.Stale {
			return nil, fmt.Errorf("chaos: oracle run degraded on %q — the oracle must be fault-free", q)
		}
		keys := make(map[string]bool)
		for _, section := range [][]probeAnswer{resp.Certain, resp.Possible, resp.Unranked} {
			for _, a := range section {
				keys[answerKey(a.Values)] = true
			}
		}
		out[q] = keys
	}
	return out, nil
}

// postQuery issues one /query request and decodes the probe slice of the
// response. Non-200 statuses are returned as typed errors so the prober
// can classify them.
func postQuery(ctx context.Context, client *http.Client, baseURL, sql string, timeout time.Duration) (*probeResponse, error) {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	body := fmt.Sprintf(`{"sql": %q}`, sql)
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, baseURL+"/query", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	//lint:allow errdrop read-side close; the response is already decoded or failed
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		//lint:allow errdrop best-effort drain so the connection can be reused
		io.Copy(io.Discard, resp.Body)
		return nil, &statusError{code: resp.StatusCode}
	}
	var pr probeResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, err
	}
	return &pr, nil
}

// statusError is a non-200 probe outcome; the server answered, so the
// service was available even though the query failed.
type statusError struct{ code int }

func (e *statusError) Error() string { return fmt.Sprintf("chaos: probe status %d", e.code) }

// probeRecord is one probe outcome in the run log.
type probeRecord struct {
	at        time.Duration // offset from run start
	available bool          // any HTTP response at all
	ok        bool          // 200 with a sound (or flagged) answer set
	status    int           // HTTP status when available (200 for ok probes)
	latency   time.Duration
}

// soundnessCheck verifies one successful chaos response against the
// oracle. Responses flagged Degraded or Stale are admissible by contract;
// unflagged responses must serve a subset of the oracle's answers.
// Returns a description of the violation, or "".
func soundnessCheck(oracle oracleAnswers, sql string, resp *probeResponse) string {
	if resp.Degraded || resp.Stale {
		return ""
	}
	keys, ok := oracle[sql]
	if !ok {
		return fmt.Sprintf("probe query %q missing from the oracle answer map", sql)
	}
	for _, section := range [][]probeAnswer{resp.Certain, resp.Possible, resp.Unranked} {
		for _, a := range section {
			if k := answerKey(a.Values); !keys[k] {
				return fmt.Sprintf("unflagged answer not in fault-free oracle for %q: %s", sql, k)
			}
		}
	}
	return ""
}
