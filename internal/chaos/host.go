// The chaos host: builds the mediator world (data, mining, knowledge file)
// and runs the HTTP server in-process with the levers the scenario pulls —
// abrupt kill, graceful drain, listener restart on the same port, fault
// profile swaps, knowledge corruption/reload, and clock skew.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"qpiad/internal/core"
	"qpiad/internal/datagen"
	"qpiad/internal/faults"
	"qpiad/internal/httpapi"
	"qpiad/internal/source"
)

// worldConfig describes one mediator world; the chaos target and the
// fault-free oracle are built from the same values so their answer sets
// are comparable.
type worldConfig struct {
	dataN   int
	seed    int64
	coreCfg core.Config
	knowCfg core.KnowledgeConfig
	profile faults.Profile // zero for the oracle
}

// world is a built mediator plus the pieces chaos events manipulate.
type world struct {
	med  *core.Mediator
	src  *source.Source
	know *core.Knowledge
	cfg  worldConfig
}

// buildWorld mirrors qpiad-server's construction: generate the cars
// dataset, poke holes in it, sample, mine, register. Everything is keyed
// off cfg.seed, so two builds with equal configs hold identical data and
// knowledge.
func buildWorld(cfg worldConfig) (*world, error) {
	gd := datagen.Cars(cfg.dataN, cfg.seed)
	ed, _ := datagen.MakeIncomplete(gd, 0.10, cfg.seed+1)
	src := source.New("cars", ed, source.Capabilities{})
	smplN := cfg.dataN / 10
	if smplN < 50 {
		smplN = 50
	}
	smpl := ed.Sample(smplN, rand.New(rand.NewSource(cfg.seed+2)))
	know, err := core.MineKnowledge("cars", smpl,
		float64(ed.Len())/float64(smpl.Len()), smpl.IncompleteFraction(), cfg.knowCfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: build world: %w", err)
	}
	med := core.New(cfg.coreCfg)
	med.Register(src, know)
	if cfg.profile.Enabled() {
		src.SetFaults(faults.New(cfg.profile))
	}
	return &world{med: med, src: src, know: know, cfg: cfg}, nil
}

// host runs the chaos target server and exposes the scenario levers. All
// mutating methods are called from the single event-executor goroutine;
// the underlying handler is shared with concurrent traffic.
type host struct {
	w   *world
	api *httpapi.Server

	mu      sync.Mutex
	srv     *http.Server
	serveWG sync.WaitGroup
	addr    string // recorded on first start; restarts rebind it
	up      bool

	clockOff atomic.Int64 // injected clock offset, nanoseconds

	knowPath  string
	corrupted bool // file corrupted since the last good write
}

// newHost builds the chaos world, saves its knowledge file, and wires the
// API handler. The injected clock (wall clock + skew offset) goes into the
// core config before the mediator is built, so every cache TTL decision
// reads chaos-owned time.
func newHost(cfg worldConfig, knowPath string, apiOpts ...httpapi.Option) (*host, error) {
	h := &host{knowPath: knowPath}
	cfg.coreCfg.Clock = func() time.Time {
		return time.Now().Add(time.Duration(h.clockOff.Load()))
	}
	w, err := buildWorld(cfg)
	if err != nil {
		return nil, err
	}
	if err := w.know.SaveFile(knowPath, cfg.knowCfg); err != nil {
		return nil, err
	}
	h.w = w
	h.api = httpapi.New(w.med, apiOpts...)
	return h, nil
}

// start binds the listener (the recorded address on restarts, an ephemeral
// port on first start) and serves in the background. Go listeners set
// SO_REUSEADDR, so rebinding the recorded port right after a close works.
func (h *host) start() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.up {
		return fmt.Errorf("chaos: server already up")
	}
	addr := h.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("chaos: listen %s: %w", addr, err)
	}
	h.addr = ln.Addr().String()
	h.srv = &http.Server{Handler: h.api, ReadHeaderTimeout: 5 * time.Second}
	srv := h.srv
	h.serveWG.Add(1)
	go func() {
		defer h.serveWG.Done()
		// Serve returns ErrServerClosed on kill/drain; anything else is a
		// listener-level failure the probes will surface as downtime.
		//lint:allow errdrop serve exit is joined via the WaitGroup; its error is expected ErrServerClosed
		srv.Serve(ln)
	}()
	h.api.EndDrain()
	h.up = true
	return nil
}

// baseURL returns the server's recorded address as an HTTP base URL.
func (h *host) baseURL() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return "http://" + h.addr
}

// kill closes the server abruptly: listener gone, open connections cut.
func (h *host) kill() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.up {
		return fmt.Errorf("chaos: kill: server not up")
	}
	err := h.srv.Close()
	h.serveWG.Wait() // Serve has returned
	h.up = false
	return err
}

// drain performs a graceful stop: readiness flips first, then Shutdown
// waits (bounded by timeout under ctx) for in-flight requests. The
// handler — counters, caches, breaker state — survives for the next
// restart.
func (h *host) drain(ctx context.Context, timeout time.Duration) error {
	// Shutdown can wait a while for in-flight requests; h.mu must not be
	// held across it or concurrent baseURL() readers (the prober) would
	// stall and corrupt the availability measurement. Mutating methods are
	// only called from the single event-executor goroutine, so releasing
	// the lock mid-drain races nothing.
	h.mu.Lock()
	if !h.up {
		h.mu.Unlock()
		return fmt.Errorf("chaos: drain: server not up")
	}
	srv := h.srv
	h.mu.Unlock()
	h.api.BeginDrain()
	sctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	err := srv.Shutdown(sctx)
	if err != nil {
		// Deadline passed with requests still in flight; cut them.
		//lint:allow errdrop the shutdown error is the actionable one
		srv.Close()
	}
	h.serveWG.Wait()
	h.mu.Lock()
	h.up = false
	h.mu.Unlock()
	return err
}

// stop takes the server down if it is up; used by run teardown, not
// scenarios.
func (h *host) stop(ctx context.Context, timeout time.Duration) {
	h.mu.Lock()
	up := h.up
	h.mu.Unlock()
	if up {
		//lint:allow errdrop teardown is best-effort; the run result is already computed
		h.drain(ctx, timeout)
	}
}

// skewClock jumps the injected clock by d (cumulative).
func (h *host) skewClock(d time.Duration) {
	h.clockOff.Add(int64(d))
}

// setFaults swaps the source's active fault profile.
func (h *host) setFaults(p faults.Profile) {
	if p.Enabled() {
		h.w.src.SetFaults(faults.New(p))
		return
	}
	h.w.src.SetFaults(nil)
}

// corruptKnowledge flips a byte in the middle of the on-disk knowledge
// file — inside the sample payload, where the JSON stays well-formed and
// only the checksum can catch it.
func (h *host) corruptKnowledge() error {
	b, err := os.ReadFile(h.knowPath)
	if err != nil {
		return fmt.Errorf("chaos: corrupt knowledge: %w", err)
	}
	if len(b) < 2 {
		return fmt.Errorf("chaos: corrupt knowledge: file too small (%d bytes)", len(b))
	}
	b[len(b)/2] ^= 0x5a
	// Deliberately not crash-safe: corruption IS the torn write.
	if err := os.WriteFile(h.knowPath, b, 0o644); err != nil {
		return fmt.Errorf("chaos: corrupt knowledge: %w", err)
	}
	h.corrupted = true
	return nil
}

// reloadKnowledge exercises the hot-reload path. When the file was
// corrupted since the last good write, the load MUST fail — that failure
// is the crash-safety contract; accepting the file is reported as a
// violation. The good knowledge is then re-saved and reloaded for real,
// and the reloaded generation is registered mid-traffic (the registry is
// RWMutex-guarded for exactly this).
func (h *host) reloadKnowledge() (violation string, err error) {
	k, loadErr := core.LoadKnowledgeFile(h.knowPath)
	if h.corrupted {
		if loadErr == nil {
			violation = "corrupt knowledge file loaded without error (checksum failed to catch a byte flip)"
		}
		// Restore the good file (crash-safely) and reload it.
		if err := h.w.know.SaveFile(h.knowPath, h.w.cfg.knowCfg); err != nil {
			return violation, err
		}
		h.corrupted = false
		k, loadErr = core.LoadKnowledgeFile(h.knowPath)
	}
	if loadErr != nil {
		return violation, fmt.Errorf("chaos: reload knowledge: %w", loadErr)
	}
	h.w.med.Register(h.w.src, k)
	return violation, nil
}

// defaultKnowPath places the knowledge file in dir.
func defaultKnowPath(dir string) string { return filepath.Join(dir, "cars.knowledge.json") }
