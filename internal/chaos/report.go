// Report types. The report is split in two on purpose:
//
//   - Deterministic holds everything the same seed must reproduce
//     byte-for-byte: the resolved event schedule and the four invariant
//     verdicts. Determinism tests (and the CLI's -check-determinism mode)
//     compare this section's canonical JSON across runs.
//   - Metrics holds wall-clock-dependent measurements — availability,
//     MTTR, latencies, the loadgen fold — which vary run to run and are
//     the quantities the chaos benchmark reports.
package chaos

import (
	"encoding/json"
	"fmt"

	"qpiad/internal/loadgen"
)

// Invariant names, in report order.
const (
	InvSoundness    = "degradation_soundness"
	InvConservation = "metric_conservation"
	InvNoLeaks      = "no_goroutine_leaks"
	InvRecovery     = "recovery"
)

// Verdict is one invariant's pass/fail.
type Verdict struct {
	Name   string `json:"name"`
	Passed bool   `json:"passed"`
}

// ScheduledEvent is one resolved schedule entry in the deterministic
// section.
type ScheduledEvent struct {
	Ordinal int    `json:"ordinal"`
	AtMs    int64  `json:"at_ms"`
	Action  Action `json:"action"`
	Source  string `json:"source,omitempty"`
	SkewMs  int64  `json:"skew_ms,omitempty"`
	FlapUp  int    `json:"flap_up,omitempty"`
	FlapDn  int    `json:"flap_down,omitempty"`
}

// Deterministic is the seed-reproducible report section.
type Deterministic struct {
	Seed     int64            `json:"seed"`
	Scenario string           `json:"scenario"`
	Schedule []ScheduledEvent `json:"schedule"`
	Verdicts []Verdict        `json:"verdicts"`
}

// Canonical returns the section's canonical JSON encoding; two runs with
// the same seed must produce identical bytes.
func (d *Deterministic) Canonical() ([]byte, error) {
	return json.Marshal(d)
}

// ExecutedEvent is one event's runtime outcome (timing section: offsets
// and error texts vary).
type ExecutedEvent struct {
	Ordinal int    `json:"ordinal"`
	Action  Action `json:"action"`
	// AtMs is the scheduled offset, ActualMs when it actually ran
	// (relative to the scenario window start).
	AtMs     int64  `json:"at_ms"`
	ActualMs int64  `json:"actual_ms"`
	Err      string `json:"err,omitempty"`
}

// Metrics is the timing-dependent report section.
type Metrics struct {
	ElapsedMs int64 `json:"elapsed_ms"`

	// Probes partition: OK (200 + sound) + Failed (non-200 response) +
	// Down (no response at all) = Probes.
	Probes       int64 `json:"probes"`
	ProbesOK     int64 `json:"probes_ok"`
	ProbesFailed int64 `json:"probes_failed"`
	ProbesDown   int64 `json:"probes_down"`

	// AvailabilityPct is responses received / probes issued: the server
	// answered, even if with an error or a shed.
	AvailabilityPct float64 `json:"availability_pct"`
	// MTTRMs is the mean outage length (first unanswered probe to the next
	// answered one); Outages counts the episodes; LongestOutageMs the
	// worst.
	MTTRMs          float64 `json:"mttr_ms"`
	Outages         int     `json:"outages"`
	LongestOutageMs float64 `json:"longest_outage_ms"`

	// Baseline (warmup window) vs recovery (post-event tail) probe
	// latency, the recovery invariant's inputs.
	BaselineP95Ms float64 `json:"baseline_p95_ms"`
	RecoveryP95Ms float64 `json:"recovery_p95_ms"`
	// RecoveryOKRate is the OK fraction over the recovery tail.
	RecoveryOKRate float64 `json:"recovery_ok_rate"`

	// Load is the background loadgen fold for the whole run.
	Load *loadgen.Report `json:"load,omitempty"`

	// Events is the executed-event log with runtime outcomes.
	Events []ExecutedEvent `json:"events"`
}

// Report is a chaos run's full outcome.
type Report struct {
	Deterministic Deterministic `json:"deterministic"`
	Metrics       Metrics       `json:"metrics"`
	// Violations lists every invariant violation in detail (empty on a
	// clean run). Soundness violations here mean unflagged fabricated
	// answers; conservation violations name the unbalanced counter.
	Violations []string `json:"violations,omitempty"`
}

// Passed reports whether every invariant verdict passed.
func (r *Report) Passed() bool {
	for _, v := range r.Deterministic.Verdicts {
		if !v.Passed {
			return false
		}
	}
	return true
}

// Summary is a one-paragraph human rendering for CLI output.
func (r *Report) Summary() string {
	status := "PASS"
	if !r.Passed() {
		status = "FAIL"
	}
	s := fmt.Sprintf("%s scenario=%s seed=%d availability=%.2f%% mttr=%.0fms outages=%d probes=%d (ok=%d failed=%d down=%d) violations=%d",
		status, r.Deterministic.Scenario, r.Deterministic.Seed,
		r.Metrics.AvailabilityPct, r.Metrics.MTTRMs, r.Metrics.Outages,
		r.Metrics.Probes, r.Metrics.ProbesOK, r.Metrics.ProbesFailed, r.Metrics.ProbesDown,
		len(r.Violations))
	for _, v := range r.Deterministic.Verdicts {
		mark := "ok"
		if !v.Passed {
			mark = "FAILED"
		}
		s += fmt.Sprintf("\n  %-24s %s", v.Name, mark)
	}
	return s
}
