package chaos

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, 0)
	b := Generate(7, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different scenarios:\n%+v\n%+v", a, b)
	}
	c := Generate(8, 0)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestGenerateValidates(t *testing.T) {
	for _, seed := range []int64{0, 1, 2, 42, 12345, -3} {
		for _, dur := range []time.Duration{0, 2 * time.Second, 30 * time.Second} {
			s := Generate(seed, dur)
			if err := s.Validate(); err != nil {
				t.Errorf("Generate(%d, %v): %v", seed, dur, err)
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		s    Scenario
		want string
	}{
		{
			"zero duration",
			Scenario{Name: "x"},
			"duration_ms",
		},
		{
			"unknown action",
			Scenario{Name: "x", DurationMs: 100, Events: []Event{{AtMs: 0, Action: "explode"}}},
			"unknown action",
		},
		{
			"event outside window",
			Scenario{Name: "x", DurationMs: 100, Events: []Event{{AtMs: 100, Action: ActSourceCrash}}},
			"outside",
		},
		{
			"unsorted",
			Scenario{Name: "x", DurationMs: 100, Events: []Event{
				{AtMs: 50, Action: ActSourceCrash}, {AtMs: 10, Action: ActSourceRestore}}},
			"sorted",
		},
		{
			"double kill",
			Scenario{Name: "x", DurationMs: 100, Events: []Event{
				{AtMs: 10, Action: ActServerKill}, {AtMs: 20, Action: ActServerKill}}},
			"already down",
		},
		{
			"restart while up",
			Scenario{Name: "x", DurationMs: 100, Events: []Event{{AtMs: 10, Action: ActServerRestart}}},
			"while the server is up",
		},
		{
			"ends down",
			Scenario{Name: "x", DurationMs: 100, Events: []Event{{AtMs: 10, Action: ActServerDrain}}},
			"ends with the server down",
		},
		{
			"flap without schedule",
			Scenario{Name: "x", DurationMs: 100, Events: []Event{{AtMs: 10, Action: ActFaultsFlap}}},
			"flap_down",
		},
		{
			"skew without offset",
			Scenario{Name: "x", DurationMs: 100, Events: []Event{{AtMs: 10, Action: ActClockSkew}}},
			"skew_ms",
		},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid scenario", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestLoadScenarioRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	body := `{
 "name": "file-scenario",
 "duration_ms": 2000,
 "events": [
  {"at_ms": 100, "action": "source_crash"},
  {"at_ms": 400, "action": "source_restore"},
  {"at_ms": 800, "action": "server_kill"},
  {"at_ms": 900, "action": "server_restart"},
  {"at_ms": 1200, "action": "clock_skew", "skew_ms": 60000}
 ]
}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadScenario(path)
	if err != nil {
		t.Fatalf("LoadScenario: %v", err)
	}
	if s.Name != "file-scenario" || len(s.Events) != 5 {
		t.Fatalf("unexpected scenario: %+v", s)
	}
	if s.Events[4].SkewMs != 60000 {
		t.Fatalf("skew_ms not decoded: %+v", s.Events[4])
	}

	if _, err := LoadScenario(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("LoadScenario accepted a missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name": "x", "duration_ms": 10, "events": [{"at_ms": 99, "action": "source_crash"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScenario(bad); err == nil {
		t.Fatal("LoadScenario accepted an out-of-window event")
	}
}
