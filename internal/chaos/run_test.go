package chaos

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// smallConfig is a fast chaos run for tests: a shrunken world and window,
// but the full event set (two server bounces, source crash, flap,
// knowledge corrupt/reload, clock skew).
func smallConfig(t *testing.T, seed int64) Config {
	t.Helper()
	return Config{
		Seed:          seed,
		Scenario:      Generate(seed, 1500*time.Millisecond),
		DataN:         400,
		Warmup:        300 * time.Millisecond,
		Recovery:      time.Second,
		ProbeInterval: 10 * time.Millisecond,
		// The race-enabled full suite saturates the machine; with the
		// default 1s deadline honest queueing delay reads as downtime.
		ProbeTimeout: 5 * time.Second,
		LoadWorkers:   2,
		LoadRate:      30,
		Dir:           t.TempDir(),
		Logf:          t.Logf,
	}
}

func TestRunInvariantsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack chaos run")
	}
	rep, err := Run(context.Background(), smallConfig(t, 11))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("\n%s", rep.Summary())
	if !rep.Passed() {
		t.Fatalf("invariants failed:\n%s\nviolations: %q", rep.Summary(), rep.Violations)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations on a passing run: %q", rep.Violations)
	}
	if rep.Metrics.Probes == 0 {
		t.Fatal("prober recorded nothing")
	}
	// The scenario kills the server twice for ~50ms each; the prober must
	// have seen both the downtime and the recovery.
	if rep.Metrics.ProbesDown == 0 {
		t.Error("expected some down probes across two server bounces")
	}
	if rep.Metrics.AvailabilityPct <= 50 {
		t.Errorf("availability %.1f%% implausibly low", rep.Metrics.AvailabilityPct)
	}
	if rep.Metrics.Load == nil || rep.Metrics.Load.Issued == 0 {
		t.Error("loadgen fold missing from metrics")
	}
	if len(rep.Metrics.Events) != len(rep.Deterministic.Schedule) {
		t.Errorf("executed %d of %d scheduled events",
			len(rep.Metrics.Events), len(rep.Deterministic.Schedule))
	}
}

func TestRunDeterministicSection(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-stack chaos runs")
	}
	var canon [][]byte
	for i := 0; i < 2; i++ {
		rep, err := Run(context.Background(), smallConfig(t, 23))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !rep.Passed() {
			t.Fatalf("run %d failed invariants:\n%s\nviolations: %q", i, rep.Summary(), rep.Violations)
		}
		b, err := rep.Deterministic.Canonical()
		if err != nil {
			t.Fatalf("run %d: canonical: %v", i, err)
		}
		canon = append(canon, b)
	}
	if !bytes.Equal(canon[0], canon[1]) {
		t.Fatalf("same seed, different deterministic sections:\n%s\n%s", canon[0], canon[1])
	}
}

func TestRunRejectsInvalidScenario(t *testing.T) {
	_, err := Run(context.Background(), Config{
		Scenario: &Scenario{Name: "bad", DurationMs: 100,
			Events: []Event{{AtMs: 10, Action: ActServerRestart}}},
	})
	if err == nil {
		t.Fatal("Run accepted an invalid scenario")
	}
}
