// Package chaos is the end-to-end chaos harness: a deterministic, seeded
// orchestrator that runs a scripted fault scenario against the full QPIAD
// stack — the loadgen mix driving the HTTP server while the scenario
// crashes and restores the source, flaps its fault profile, kills and
// restarts the listener, drains it gracefully, corrupts and reloads the
// on-disk knowledge, and skews the injected clock — with four invariant
// oracles checked across the run:
//
//  1. Degradation soundness: every answer served under chaos either exists
//     in a fault-free oracle run or arrives flagged Degraded/Stale.
//  2. Metric conservation: admitted = Σ endpoint completions, the shed
//     breakdown sums, gauges return to zero, hedge and loadgen identities
//     balance.
//  3. No goroutine leaks: a leakcheck snapshot/diff brackets the run.
//  4. Recovery: once the scenario ends, probe success rate and tail
//     latency return to the pre-fault baseline within the recovery window.
//
// Same seed ⇒ byte-identical event schedule and invariant verdicts (the
// report's Deterministic section); availability, MTTR and latency live in
// the timing section and vary with the machine.
package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"qpiad/internal/afd"
	"qpiad/internal/breaker"
	"qpiad/internal/core"
	"qpiad/internal/faults"
	"qpiad/internal/httpapi"
	"qpiad/internal/leakcheck"
	"qpiad/internal/loadgen"
	"qpiad/internal/nbc"
)

// Config tunes a chaos run. Zero fields take the documented defaults.
type Config struct {
	// Seed drives everything reproducible: world generation, fault
	// profiles, the generated scenario, and the loadgen workload.
	// Default 1.
	Seed int64
	// Scenario is the scripted schedule; nil generates the default
	// full-stack scenario from the seed (see Generate).
	Scenario *Scenario
	// DataN is the generated dataset size. Default 3000.
	DataN int
	// Warmup precedes the scenario window: fault-free probing that
	// establishes the recovery baseline. Default 1s.
	Warmup time.Duration
	// Recovery follows the scenario window: the bounded interval within
	// which the recovery invariant must see the system back at baseline.
	// Default 1.5s.
	Recovery time.Duration
	// ProbeInterval paces the blind prober. Default 20ms.
	ProbeInterval time.Duration
	// ProbeTimeout is the per-probe deadline; a probe that exceeds it
	// counts as down. Default 1s — raise it when the run shares a machine
	// with other heavy work (the in-package tests do), or honest queueing
	// delay masquerades as downtime.
	ProbeTimeout time.Duration
	// LoadWorkers / LoadRate shape the background loadgen traffic
	// (closed loop, token-bucket paced). Defaults 4 workers at 10 req/s
	// each — moderate utilization on purpose: the harness measures
	// availability under faults, and a saturating workload would turn
	// queueing delay into fake outages.
	LoadWorkers int
	LoadRate    float64
	// MaxInFlight arms the server's admission gate. Default 8.
	MaxInFlight int
	// DrainTimeout bounds graceful drains (scenario and teardown).
	// Default 2s.
	DrainTimeout time.Duration
	// Dir is the scratch directory for the knowledge files; empty means a
	// fresh temp dir, removed after the run.
	Dir string
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DataN <= 0 {
		c.DataN = 3000
	}
	if c.Warmup <= 0 {
		c.Warmup = time.Second
	}
	if c.Recovery <= 0 {
		c.Recovery = 1500 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 20 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.LoadWorkers <= 0 {
		c.LoadWorkers = 4
	}
	if c.LoadRate <= 0 {
		c.LoadRate = 10
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 2 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// baseProfile is the mild steady-state fault profile the source starts
// with (and source_restore returns to): realistic background flakiness,
// fully seeded.
func baseProfile(seed int64) faults.Profile {
	return faults.Profile{Seed: seed, TransientRate: 0.02, LatencyJitter: 2 * time.Millisecond}
}

// Run executes one chaos run under ctx and returns its report. An error
// means the harness itself failed to run (world build, oracle down);
// invariant failures are reported in the Report, not as errors.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	scen := cfg.Scenario
	if scen == nil {
		scen = Generate(cfg.Seed, 0)
	}
	if err := scen.Validate(); err != nil {
		return nil, err
	}

	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "qpiad-chaos-*")
		if err != nil {
			return nil, fmt.Errorf("chaos: scratch dir: %w", err)
		}
		//lint:allow errdrop best-effort scratch cleanup
		defer os.RemoveAll(dir)
	}

	// The leak bracket opens before any run goroutine exists.
	leakSnap := leakcheck.Take()

	knowCfg := core.KnowledgeConfig{AFD: afd.Config{MinSupport: 5}, Predictor: nbc.PredictorConfig{}}
	target, err := newHost(worldConfig{
		dataN: cfg.DataN,
		seed:  cfg.Seed,
		coreCfg: core.Config{
			Alpha: 0, K: 8, Parallel: 4,
			Retry: core.RetryPolicy{MaxAttempts: 2, AttemptTimeout: 100 * time.Millisecond},
			// Breaker recovery is scaled to chaos windows: the default 500ms
			// OpenTimeout would swallow most of a short recovery tail, turning
			// a healthy system into a recovery-invariant failure.
			Breaker:  &breaker.Config{OpenTimeout: 150 * time.Millisecond, CloseAfter: 1},
			CacheTTL: 5 * time.Second,
			StaleTTL: time.Hour,
		},
		knowCfg: knowCfg,
		profile: baseProfile(cfg.Seed),
	}, defaultKnowPath(dir), httpapi.WithAdmission(httpapi.AdmissionConfig{
		MaxInFlight:  cfg.MaxInFlight,
		MaxQueue:     2 * cfg.MaxInFlight,
		QueueTimeout: 100 * time.Millisecond,
		RetryAfter:   50 * time.Millisecond,
	}))
	if err != nil {
		return nil, err
	}
	// The oracle: identical seeds, no faults, no breaker/cache machinery —
	// the fault-free reference the soundness invariant compares against.
	oracle, err := newHost(worldConfig{
		dataN:   cfg.DataN,
		seed:    cfg.Seed,
		coreCfg: core.Config{Alpha: 0, K: 8, Parallel: 4},
		knowCfg: knowCfg,
	}, defaultKnowPath(dir)+".oracle")
	if err != nil {
		return nil, err
	}
	if err := oracle.start(); err != nil {
		return nil, err
	}
	if err := target.start(); err != nil {
		oracle.stop(ctx, cfg.DrainTimeout)
		return nil, err
	}

	transport := func() *http.Transport {
		return &http.Transport{MaxIdleConns: 16, MaxIdleConnsPerHost: 16}
	}
	// The prober dials fresh every time: POSTs on a pooled connection that
	// died with a server kill are not replayable, so each stale keep-alive
	// conn would read as one fake down probe after every restart. The
	// availability signal must track the listener, not the pool.
	probeTransport := transport()
	probeTransport.DisableKeepAlives = true
	probeClient := &http.Client{Transport: probeTransport}
	loadClient := &http.Client{Transport: transport()}
	oracleClient := &http.Client{Transport: transport()}

	queries := probeQueries()
	oracleSet, oerr := collectOracle(ctx, oracleClient, oracle.baseURL(), queries)
	if oerr != nil {
		target.stop(ctx, cfg.DrainTimeout)
		oracle.stop(ctx, cfg.DrainTimeout)
		return nil, oerr
	}

	// The address survives restarts (the host rebinds the recorded port),
	// so it is read once here rather than taking the host lock per probe.
	targetURL := target.baseURL()
	scenDur := time.Duration(scen.DurationMs) * time.Millisecond
	total := cfg.Warmup + scenDur + cfg.Recovery
	cfg.Logf("chaos: scenario %s (%d events, %v) + %v warmup + %v recovery against %s",
		scen.Name, len(scen.Events), scenDur, cfg.Warmup, cfg.Recovery, targetURL)

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	start := time.Now()

	// Background load: the loadgen mix for the whole run. Its report folds
	// into the metrics section; its identity (Issued = OK+Shed+Errors+
	// Aborted) is one conservation check.
	var (
		wg      sync.WaitGroup
		loadRep *loadgen.Report
		loadErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		//lint:allow errdrop the captured error is read after wg.Wait, in checkConservation
		loadRep, loadErr = loadgen.Run(runCtx, loadgen.Config{
			BaseURL:     targetURL,
			Workers:     cfg.LoadWorkers,
			Duration:    total,
			Rate:        cfg.LoadRate,
			Seed:        cfg.Seed + 100,
			ShedBackoff: 200 * time.Millisecond,
			Client:      loadClient,
		})
	}()

	// The blind prober: fixed rotation at a fixed cadence. Each probe runs
	// in its own goroutine (bounded by a semaphore) so a slow or hung
	// response never stalls the sampling grid — availability and MTTR are
	// measured on probe start times, and a serial prober would smear a
	// 50ms outage across whatever its previous probe's latency was.
	var (
		probeMu    sync.Mutex
		probeLog   []probeRecord
		violations []string
		probeWG    sync.WaitGroup
		probeSem   = make(chan struct{}, 128)
	)
	probe := func(sql string, t0 time.Time) {
		defer func() { <-probeSem }()
		resp, err := postQuery(runCtx, probeClient, targetURL, sql, cfg.ProbeTimeout)
		if err != nil && runCtx.Err() != nil {
			// The run ended with this probe still in flight; its outcome is
			// censored (the harness stopped observing), not a server failure.
			// Recording it as down would charge harness shutdown against the
			// recovery tail.
			return
		}
		rec := probeRecord{at: t0.Sub(start), latency: time.Since(t0)}
		var vio string
		switch {
		case err == nil:
			rec.available = true
			rec.status = http.StatusOK
			if vio = soundnessCheck(oracleSet, sql, resp); vio == "" {
				rec.ok = true
			}
		default:
			var se *statusError
			if errors.As(err, &se) {
				rec.available = true // the server answered, with an error
				rec.status = se.code
			}
		}
		if !rec.ok {
			cfg.Logf("chaos: probe at +%dms not ok: status=%d err=%v", rec.at.Milliseconds(), rec.status, err)
		}
		probeMu.Lock()
		probeLog = append(probeLog, rec)
		if vio != "" {
			violations = append(violations, vio)
		}
		probeMu.Unlock()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer probeWG.Wait()
		ticker := time.NewTicker(cfg.ProbeInterval)
		defer ticker.Stop()
		for i := 0; ; i++ {
			select {
			case <-runCtx.Done():
				return
			case <-ticker.C:
			}
			if time.Since(start) >= total {
				return
			}
			select {
			case probeSem <- struct{}{}:
			case <-runCtx.Done():
				return
			}
			probeWG.Add(1)
			go func(sql string, t0 time.Time) {
				defer probeWG.Done()
				probe(sql, t0)
			}(queries[i%len(queries)], time.Now())
		}
	}()

	// The event executor: single goroutine, events in schedule order,
	// offsets relative to the end of warmup.
	executed := make([]ExecutedEvent, 0, len(scen.Events))
	var execViolations []string
	wg.Add(1)
	go func() {
		defer wg.Done()
		scenStart := start.Add(cfg.Warmup)
		for i, e := range scen.Events {
			if !sleepUntil(runCtx, scenStart.Add(time.Duration(e.AtMs)*time.Millisecond)) {
				return
			}
			rec := ExecutedEvent{Ordinal: i, Action: e.Action, AtMs: e.AtMs,
				ActualMs: time.Since(scenStart).Milliseconds()}
			var err error
			switch e.Action {
			case ActSourceCrash:
				target.setFaults(faults.Profile{Seed: cfg.Seed, TransientRate: 1})
			case ActSourceHang:
				target.setFaults(faults.Profile{Seed: cfg.Seed, TimeoutRate: 1})
			case ActSourceRestore:
				target.setFaults(baseProfile(cfg.Seed))
			case ActFaultsFlap:
				target.setFaults(flapProfile(baseProfile(cfg.Seed), e))
			case ActServerKill:
				err = target.kill()
			case ActServerDrain:
				err = target.drain(runCtx, cfg.DrainTimeout)
			case ActServerRestart:
				err = target.start()
			case ActKnowledgeCorrupt:
				err = target.corruptKnowledge()
			case ActKnowledgeReload:
				var vio string
				vio, err = target.reloadKnowledge()
				if vio != "" {
					execViolations = append(execViolations, vio)
				}
			case ActClockSkew:
				target.skewClock(time.Duration(e.SkewMs) * time.Millisecond)
			}
			if err != nil {
				rec.Err = err.Error()
			}
			cfg.Logf("chaos: event %d %s at +%dms (scheduled %dms)%s",
				i, e.Action, rec.ActualMs, e.AtMs, errSuffix(rec.Err))
			executed = append(executed, rec)
		}
	}()

	// Wait out the run, then stop traffic and join everything.
	if !sleepUntil(ctx, start.Add(total)) {
		cancelRun()
	}
	cancelRun()
	wg.Wait()

	// Quiesce and read the final metrics while the server is still up:
	// in-flight handlers from aborted clients finish within their attempt
	// deadlines, after which the gauges must be zero.
	conservation := checkConservation(ctx, probeClient, targetURL, loadRep, loadErr)

	// Teardown before the leak check: server drained, oracle stopped, all
	// client pools emptied — anything still alive after that is a leak.
	target.stop(ctx, cfg.DrainTimeout)
	oracle.stop(ctx, cfg.DrainTimeout)
	probeClient.CloseIdleConnections()
	loadClient.CloseIdleConnections()
	oracleClient.CloseIdleConnections()
	leaks := leakSnap.Check(leakcheck.WithRetries(100), leakcheck.WithBackoff(10*time.Millisecond))

	// Fold the probe log into availability, MTTR, and the recovery check.
	violations = append(violations, execViolations...)
	for _, ev := range executed {
		if ev.Err != "" {
			violations = append(violations, fmt.Sprintf("event %d (%s) failed: %s", ev.Ordinal, ev.Action, ev.Err))
		}
	}
	rep := foldReport(cfg, scen, probeLog, executed, violations, conservation, leaks, loadRep, time.Since(start))
	return rep, nil
}

// errSuffix renders an optional error for the progress log.
func errSuffix(s string) string {
	if s == "" {
		return ""
	}
	return " err=" + s
}

// sleepUntil waits until the deadline or ctx cancellation; reports whether
// the full wait completed.
func sleepUntil(ctx context.Context, t time.Time) bool {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// metricsSnapshot is the slice of GET /metrics the conservation oracle
// reads (field names mirror httpapi's wire format).
type metricsSnapshot struct {
	Sources []struct {
		Source  string `json:"source"`
		Breaker *struct {
			HedgesLaunched uint64 `json:"hedges_launched"`
			HedgeWins      uint64 `json:"hedge_wins"`
			HedgeLosses    uint64 `json:"hedge_losses"`
		} `json:"breaker"`
	} `json:"sources"`
	HTTP struct {
		Admission *struct {
			InFlight      int64 `json:"inflight"`
			Queued        int64 `json:"queued"`
			Admitted      int64 `json:"admitted"`
			ShedQueueFull int64 `json:"shed_queue_full"`
			ShedTimeout   int64 `json:"shed_queue_timeout"`
			ShedDeadline  int64 `json:"shed_deadline"`
			Shed          int64 `json:"shed"`
		} `json:"admission"`
		Endpoints map[string]struct {
			Count int64 `json:"count"`
		} `json:"endpoints"`
		ServerErrors int64 `json:"server_errors"`
		Panics       int64 `json:"panics"`
	} `json:"http"`
}

// fetchMetrics polls GET /metrics until the admission gauges are quiescent
// (or the budget runs out) and returns the final snapshot.
func fetchMetrics(ctx context.Context, client *http.Client, baseURL string) (*metricsSnapshot, error) {
	deadline := time.Now().Add(3 * time.Second)
	for {
		m, err := fetchMetricsOnce(ctx, client, baseURL)
		if err == nil && (m.HTTP.Admission == nil ||
			(m.HTTP.Admission.InFlight == 0 && m.HTTP.Admission.Queued == 0)) {
			return m, nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return nil, err
			}
			return m, nil
		}
		if !sleepUntil(ctx, time.Now().Add(50*time.Millisecond)) {
			return m, err
		}
	}
}

func fetchMetricsOnce(ctx context.Context, client *http.Client, baseURL string) (*metricsSnapshot, error) {
	rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	//lint:allow errdrop read-side close after full decode
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		//lint:allow errdrop best-effort drain for connection reuse
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("chaos: /metrics status %d", resp.StatusCode)
	}
	var m metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// checkConservation verifies the counter identities after quiescence and
// returns the violations (empty = invariant holds).
func checkConservation(ctx context.Context, client *http.Client, baseURL string, load *loadgen.Report, loadErr error) []string {
	var out []string
	m, err := fetchMetrics(ctx, client, baseURL)
	if err != nil {
		return []string{fmt.Sprintf("final /metrics unreadable: %v", err)}
	}
	adm := m.HTTP.Admission
	if adm == nil {
		out = append(out, "admission metrics missing (gate not armed?)")
	} else {
		var completed int64
		for _, ep := range []string{"query", "query_stream", "join"} {
			completed += m.HTTP.Endpoints[ep].Count
		}
		if adm.Admitted != completed {
			out = append(out, fmt.Sprintf("admitted %d != endpoint completions %d", adm.Admitted, completed))
		}
		if adm.InFlight != 0 || adm.Queued != 0 {
			out = append(out, fmt.Sprintf("gauges not quiescent: inflight=%d queued=%d", adm.InFlight, adm.Queued))
		}
		if sum := adm.ShedQueueFull + adm.ShedTimeout + adm.ShedDeadline; adm.Shed != sum {
			out = append(out, fmt.Sprintf("shed %d != reason sum %d", adm.Shed, sum))
		}
	}
	for _, src := range m.Sources {
		if b := src.Breaker; b != nil && b.HedgesLaunched != b.HedgeWins+b.HedgeLosses {
			out = append(out, fmt.Sprintf("source %s: hedges launched %d != wins %d + losses %d",
				src.Source, b.HedgesLaunched, b.HedgeWins, b.HedgeLosses))
		}
	}
	switch {
	case loadErr != nil:
		out = append(out, fmt.Sprintf("loadgen failed: %v", loadErr))
	case load == nil:
		out = append(out, "loadgen produced no report")
	case load.Issued != load.OK+load.Shed+load.Errors+load.Aborted:
		out = append(out, fmt.Sprintf("loadgen issued %d != ok %d + shed %d + errors %d + aborted %d",
			load.Issued, load.OK, load.Shed, load.Errors, load.Aborted))
	}
	return out
}

// foldReport computes availability/MTTR/recovery from the probe log and
// assembles the report with its deterministic and timing sections.
func foldReport(cfg Config, scen *Scenario, probes []probeRecord, executed []ExecutedEvent,
	violations, conservation []string, leaks []leakcheck.Leak, load *loadgen.Report, elapsed time.Duration) *Report {

	met := Metrics{ElapsedMs: elapsed.Milliseconds(), Load: load, Events: executed}
	// Concurrent probes land in the log in completion order; the outage
	// scan below needs start order.
	sort.Slice(probes, func(i, j int) bool { return probes[i].at < probes[j].at })
	var downSpans []time.Duration
	var downStart time.Duration = -1
	for _, p := range probes {
		met.Probes++
		switch {
		case p.ok:
			met.ProbesOK++
		case p.available:
			met.ProbesFailed++
		default:
			met.ProbesDown++
		}
		if !p.available {
			if downStart < 0 {
				downStart = p.at
			}
		} else if downStart >= 0 {
			downSpans = append(downSpans, p.at-downStart)
			downStart = -1
		}
	}
	if downStart >= 0 { // outage open at run end
		downSpans = append(downSpans, elapsed-downStart)
	}
	if met.Probes > 0 {
		met.AvailabilityPct = 100 * float64(met.Probes-met.ProbesDown) / float64(met.Probes)
	}
	met.Outages = len(downSpans)
	var sum, worst time.Duration
	for _, d := range downSpans {
		sum += d
		if d > worst {
			worst = d
		}
	}
	if len(downSpans) > 0 {
		met.MTTRMs = float64(sum.Milliseconds()) / float64(len(downSpans))
		met.LongestOutageMs = float64(worst.Milliseconds())
	}

	// Baseline: OK probes inside the warmup window. Recovery: probes after
	// the scenario window ends.
	recoveryFrom := cfg.Warmup + time.Duration(scen.DurationMs)*time.Millisecond
	var baseLat, recLat []time.Duration
	var recTotal, recOK int
	for _, p := range probes {
		if p.at < cfg.Warmup && p.ok {
			baseLat = append(baseLat, p.latency)
		}
		if p.at >= recoveryFrom {
			recTotal++
			if p.ok {
				recOK++
				recLat = append(recLat, p.latency)
			}
		}
	}
	met.BaselineP95Ms = float64(p95(baseLat).Microseconds()) / 1e3
	met.RecoveryP95Ms = float64(p95(recLat).Microseconds()) / 1e3
	if recTotal > 0 {
		met.RecoveryOKRate = float64(recOK) / float64(recTotal)
	}

	// Recovery verdict: the tail must be answering again (≥90% OK) with a
	// p95 within 10x the warmup baseline (floored generously: at light
	// probe load micro-jitter dominates small baselines).
	recovered := recTotal > 0 && met.RecoveryOKRate >= 0.9
	bound := 10 * met.BaselineP95Ms
	if bound < 500 {
		bound = 500
	}
	if met.RecoveryP95Ms > bound {
		recovered = false
	}
	if !recovered {
		violations = append(violations, fmt.Sprintf(
			"recovery: ok-rate %.2f over %d tail probes, p95 %.1fms vs baseline %.1fms (bound %.1fms)",
			met.RecoveryOKRate, recTotal, met.RecoveryP95Ms, met.BaselineP95Ms, bound))
	}
	for _, l := range leaks {
		violations = append(violations, "goroutine leak: "+l.String())
	}
	violations = append(violations, conservation...)

	det := Deterministic{Seed: cfg.Seed, Scenario: scen.Name}
	for i, e := range scen.Events {
		det.Schedule = append(det.Schedule, ScheduledEvent{
			Ordinal: i, AtMs: e.AtMs, Action: e.Action, Source: e.Source,
			SkewMs: e.SkewMs, FlapUp: e.FlapUp, FlapDn: e.FlapDown,
		})
	}
	soundnessOK := true
	for _, v := range violations {
		if isSoundnessViolation(v) {
			soundnessOK = false
		}
	}
	det.Verdicts = []Verdict{
		{Name: InvSoundness, Passed: soundnessOK},
		{Name: InvConservation, Passed: len(conservation) == 0},
		{Name: InvNoLeaks, Passed: len(leaks) == 0},
		{Name: InvRecovery, Passed: recovered},
	}
	return &Report{Deterministic: det, Metrics: met, Violations: violations}
}

// isSoundnessViolation classifies a violation string as a degradation-
// soundness failure (fabricated answers or accepted corruption).
func isSoundnessViolation(v string) bool {
	for _, sub := range []string{"unflagged answer", "corrupt knowledge", "missing from the oracle"} {
		if strings.Contains(v, sub) {
			return true
		}
	}
	return false
}

// p95 computes the 95th percentile of a small latency sample.
func p95(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted) * 95) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
