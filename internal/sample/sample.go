// Package sample builds the mediator's offline knowledge sample by probing
// an autonomous source with random queries (Section 3 / 5.4 of the paper:
// "QPIAD mines attribute correlations, value distributions, and query
// selectivity using a small portion of data sampled from the autonomous
// database using random probing queries").
//
// The sampler never reads the backing relation directly — it only issues
// queries through the source's restricted interface, seeded with a few
// known attribute values and expanding its value pool from the tuples it
// retrieves (snowball probing). It also derives the two scaling statistics
// of Section 5.4: SmplRatio (database size over sample size, estimated by
// comparing result cardinalities) and PerInc (fraction of incomplete tuples
// seen while sampling).
package sample

import (
	"fmt"
	"math/rand"

	"qpiad/internal/relation"
	"qpiad/internal/source"
)

// Config controls probing.
type Config struct {
	// TargetSize is the number of distinct tuples to collect.
	TargetSize int
	// ProbeAttrs are the attributes to bind in probe queries. Defaults to
	// every bindable attribute of the source.
	ProbeAttrs []string
	// Seeds provides initial attribute values to probe with. At least one
	// non-empty seed list (or a source that accepts an empty query) is
	// needed to bootstrap.
	Seeds map[string][]relation.Value
	// MaxProbes bounds the number of probe queries (0 = 20 × TargetSize).
	MaxProbes int
	// Rng drives the random choices; required for reproducibility.
	Rng *rand.Rand
}

// Result is the probing outcome.
type Result struct {
	// Sample holds the distinct tuples collected.
	Sample *relation.Relation
	// Probes is the number of probe queries issued.
	Probes int
	// PerInc is the fraction of sampled tuples that are incomplete
	// (Section 5.4's PerInc(R)).
	PerInc float64
}

// Probe collects a sample from src by random probing queries.
func Probe(src *source.Source, cfg Config) (*Result, error) {
	if cfg.Rng == nil {
		return nil, fmt.Errorf("sample: Config.Rng is required")
	}
	if cfg.TargetSize <= 0 {
		return nil, fmt.Errorf("sample: TargetSize must be positive")
	}
	attrs := cfg.ProbeAttrs
	if len(attrs) == 0 {
		for _, a := range src.Schema().Names() {
			if src.Supports(a) {
				attrs = append(attrs, a)
			}
		}
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("sample: source %s has no bindable attributes", src.Name())
	}
	maxProbes := cfg.MaxProbes
	if maxProbes == 0 {
		maxProbes = 20 * cfg.TargetSize
	}

	// Value pools per probe attribute, seeded then grown from results.
	pool := make(map[string][]relation.Value, len(attrs))
	poolSeen := make(map[string]map[string]bool, len(attrs))
	for _, a := range attrs {
		poolSeen[a] = make(map[string]bool)
		for _, v := range cfg.Seeds[a] {
			if !v.IsNull() && !poolSeen[a][v.Key()] {
				poolSeen[a][v.Key()] = true
				pool[a] = append(pool[a], v)
			}
		}
	}

	out := relation.New(src.Name()+"_sample", src.Schema())
	seen := make(map[string]bool)
	res := &Result{}
	incomplete := 0

	addTuple := func(t relation.Tuple) {
		k := t.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		out.MustInsert(t)
		if !t.IsComplete() {
			incomplete++
		}
		// Grow the probe pools from the new tuple.
		for _, a := range attrs {
			i, ok := src.Schema().Index(a)
			if !ok {
				continue
			}
			v := t[i]
			if v.IsNull() || poolSeen[a][v.Key()] {
				continue
			}
			poolSeen[a][v.Key()] = true
			pool[a] = append(pool[a], v)
		}
	}

	for res.Probes < maxProbes && out.Len() < cfg.TargetSize {
		// Pick a random attribute with a non-empty pool.
		candidates := attrs[:0:0]
		for _, a := range attrs {
			if len(pool[a]) > 0 {
				candidates = append(candidates, a)
			}
		}
		if len(candidates) == 0 {
			return nil, fmt.Errorf("sample: no seed values to probe source %s with", src.Name())
		}
		a := candidates[cfg.Rng.Intn(len(candidates))]
		v := pool[a][cfg.Rng.Intn(len(pool[a]))]
		res.Probes++
		rows, err := src.Query(relation.NewQuery(src.Name(), relation.Eq(a, v)))
		if err != nil {
			return nil, fmt.Errorf("sample: probe failed: %w", err)
		}
		for _, t := range rows {
			addTuple(t)
			if out.Len() >= cfg.TargetSize {
				break
			}
		}
	}
	if out.Len() == 0 {
		return nil, fmt.Errorf("sample: probing source %s yielded no tuples in %d probes", src.Name(), res.Probes)
	}
	res.Sample = out
	res.PerInc = float64(incomplete) / float64(out.Len())
	return res, nil
}

// EstimateRatio estimates SmplRatio(R) — the original database size over
// the sample size — by issuing each probe query to both the source and the
// sample and averaging the cardinality ratios (Section 5.4). Queries with
// empty sample results are skipped; ok is false when every probe was
// skipped.
func EstimateRatio(src *source.Source, smpl *relation.Relation, probes []relation.Query) (float64, bool) {
	sum, n := 0.0, 0
	for _, q := range probes {
		inSample := len(smpl.Select(q))
		if inSample == 0 {
			continue
		}
		rows, err := src.Query(q)
		if err != nil {
			continue
		}
		sum += float64(len(rows)) / float64(inSample)
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
