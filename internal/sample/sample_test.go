package sample

import (
	"math/rand"
	"testing"

	"qpiad/internal/relation"
	"qpiad/internal/source"
)

// bigRel builds a relation with a connected value graph so snowball probing
// can reach every tuple from a single seed.
func bigRel(n int, nullEvery int) *relation.Relation {
	s := relation.MustSchema(
		relation.Attribute{Name: "id", Kind: relation.KindInt},
		relation.Attribute{Name: "make", Kind: relation.KindString},
		relation.Attribute{Name: "model", Kind: relation.KindString},
		relation.Attribute{Name: "year", Kind: relation.KindInt},
	)
	r := relation.New("cars", s)
	makes := []string{"Honda", "Toyota", "BMW", "Audi"}
	models := []string{"Civic", "Camry", "Z4", "A4"}
	for i := 0; i < n; i++ {
		m := i % 4
		year := relation.Value(relation.Int(int64(1998 + i%8)))
		if nullEvery > 0 && i%nullEvery == 0 {
			year = relation.Null()
		}
		r.MustInsert(relation.Tuple{
			relation.Int(int64(i)), // distinguishes otherwise-identical rows
			relation.String(makes[m]),
			relation.String(models[(m+i/4)%4]),
			year,
		})
	}
	return r
}

func TestProbeCollectsSample(t *testing.T) {
	src := source.New("cars", bigRel(400, 10), source.Capabilities{})
	res, err := Probe(src, Config{
		TargetSize: 100,
		ProbeAttrs: []string{"make", "model"},
		Seeds:      map[string][]relation.Value{"make": {relation.String("Honda")}},
		Rng:        rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sample.Len() != 100 {
		t.Fatalf("sample size = %d, want 100", res.Sample.Len())
	}
	if res.Probes == 0 {
		t.Error("probes not counted")
	}
	// PerInc should be near 1/10.
	if res.PerInc < 0.01 || res.PerInc > 0.3 {
		t.Errorf("PerInc = %v, expected near 0.1", res.PerInc)
	}
	// Sample tuples must be distinct.
	seen := map[string]bool{}
	for _, tu := range res.Sample.Tuples() {
		k := tu.Key()
		if seen[k] {
			t.Fatal("duplicate tuple in sample")
		}
		seen[k] = true
	}
}

func TestProbeUsesOnlySourceInterface(t *testing.T) {
	// A budget-capped source proves Probe goes through Query.
	src := source.New("cars", bigRel(400, 0), source.Capabilities{MaxQueries: 3})
	_, err := Probe(src, Config{
		TargetSize: 1000,
		ProbeAttrs: []string{"make"},
		Seeds:      map[string][]relation.Value{"make": {relation.String("Honda")}},
		Rng:        rand.New(rand.NewSource(2)),
	})
	if err == nil {
		t.Fatal("budget exhaustion should surface as error")
	}
}

func TestProbeNoSeeds(t *testing.T) {
	src := source.New("cars", bigRel(50, 0), source.Capabilities{})
	_, err := Probe(src, Config{
		TargetSize: 10,
		ProbeAttrs: []string{"make"},
		Rng:        rand.New(rand.NewSource(3)),
	})
	if err == nil {
		t.Fatal("no seeds should error")
	}
}

func TestProbeValidation(t *testing.T) {
	src := source.New("cars", bigRel(50, 0), source.Capabilities{})
	if _, err := Probe(src, Config{TargetSize: 10}); err == nil {
		t.Error("nil Rng should error")
	}
	if _, err := Probe(src, Config{Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("zero TargetSize should error")
	}
}

func TestProbeDefaultsToBindableAttrs(t *testing.T) {
	src := source.New("cars", bigRel(200, 0), source.Capabilities{BindableAttrs: []string{"make"}})
	res, err := Probe(src, Config{
		TargetSize: 50,
		Seeds:      map[string][]relation.Value{"make": {relation.String("Honda"), relation.String("BMW"), relation.String("Toyota"), relation.String("Audi")}},
		Rng:        rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sample.Len() != 50 {
		t.Errorf("sample size = %d", res.Sample.Len())
	}
}

func TestProbeRespectsMaxProbes(t *testing.T) {
	src := source.New("cars", bigRel(400, 0), source.Capabilities{MaxResults: 1})
	res, err := Probe(src, Config{
		TargetSize: 300,
		MaxProbes:  5,
		ProbeAttrs: []string{"make"},
		Seeds:      map[string][]relation.Value{"make": {relation.String("Honda")}},
		Rng:        rand.New(rand.NewSource(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes > 5 {
		t.Errorf("probes = %d, exceeds MaxProbes", res.Probes)
	}
}

func TestEstimateRatio(t *testing.T) {
	rel := bigRel(400, 0)
	src := source.New("cars", rel, source.Capabilities{})
	rng := rand.New(rand.NewSource(6))
	smpl := rel.Sample(100, rng)
	probes := []relation.Query{
		relation.NewQuery("cars", relation.Eq("make", relation.String("Honda"))),
		relation.NewQuery("cars", relation.Eq("make", relation.String("BMW"))),
	}
	ratio, ok := EstimateRatio(src, smpl, probes)
	if !ok {
		t.Fatal("ratio estimation failed")
	}
	// True ratio is 4; accept a generous band.
	if ratio < 2 || ratio > 8 {
		t.Errorf("ratio = %v, want near 4", ratio)
	}
}

func TestEstimateRatioNoUsableProbes(t *testing.T) {
	rel := bigRel(50, 0)
	src := source.New("cars", rel, source.Capabilities{})
	smpl := relation.New("empty", rel.Schema)
	probes := []relation.Query{
		relation.NewQuery("cars", relation.Eq("make", relation.String("Honda"))),
	}
	if _, ok := EstimateRatio(src, smpl, probes); ok {
		t.Error("empty sample results should yield ok=false")
	}
}
