package source

import (
	"errors"
	"sync"
	"testing"

	"qpiad/internal/relation"
)

func carRel() *relation.Relation {
	s := relation.MustSchema(
		relation.Attribute{Name: "make", Kind: relation.KindString},
		relation.Attribute{Name: "model", Kind: relation.KindString},
		relation.Attribute{Name: "year", Kind: relation.KindInt},
		relation.Attribute{Name: "body_style", Kind: relation.KindString},
	)
	r := relation.New("cars", s)
	rows := []relation.Tuple{
		{relation.String("Audi"), relation.String("A4"), relation.Int(2001), relation.String("Convt")},
		{relation.String("BMW"), relation.String("Z4"), relation.Int(2002), relation.String("Convt")},
		{relation.String("BMW"), relation.String("Z4"), relation.Int(2003), relation.Null()},
		{relation.String("Honda"), relation.String("Civic"), relation.Int(2004), relation.Null()},
		{relation.String("Toyota"), relation.String("Camry"), relation.Int(2002), relation.String("Sedan")},
	}
	for _, t := range rows {
		r.MustInsert(t)
	}
	return r
}

func TestQueryBasic(t *testing.T) {
	src := New("cars", carRel(), Capabilities{})
	rows, err := src.Query(relation.NewQuery("cars", relation.Eq("make", relation.String("BMW"))))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	st := src.Stats()
	if st.Queries != 1 || st.TuplesReturned != 2 || st.Rejected != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueryReturnsCopies(t *testing.T) {
	rel := carRel()
	src := New("cars", rel, Capabilities{})
	rows, err := src.Query(relation.NewQuery("cars", relation.Eq("make", relation.String("Audi"))))
	if err != nil {
		t.Fatal(err)
	}
	rows[0][0] = relation.String("Hacked")
	if rel.Tuple(0)[0].Str() != "Audi" {
		t.Error("Query must return copies, not aliases")
	}
}

func TestFormSemanticsExcludeNullsOnBoundAttr(t *testing.T) {
	// A form query body_style=Convt must not return the tuples whose
	// body_style is null — that is exactly why QPIAD needs rewriting.
	src := New("cars", carRel(), Capabilities{})
	rows, err := src.Query(relation.NewQuery("cars", relation.Eq("body_style", relation.String("Convt"))))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("certain answers = %d, want 2", len(rows))
	}
	// But a query on model=Z4 returns the Z4 with null body_style.
	rows, err = src.Query(relation.NewQuery("cars", relation.Eq("model", relation.String("Z4"))))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Z4 rows = %d, want 2 (incl. null body_style)", len(rows))
	}
}

func TestNullBindingRefused(t *testing.T) {
	src := New("cars", carRel(), Capabilities{})
	_, err := src.Query(relation.NewQuery("cars", relation.IsNull("body_style")))
	if !errors.Is(err, ErrNullBinding) {
		t.Fatalf("err = %v, want ErrNullBinding", err)
	}
	if src.Stats().Rejected != 1 || src.Stats().Queries != 0 {
		t.Errorf("rejection accounting: %+v", src.Stats())
	}
	// With AllowNullBinding the same query succeeds.
	src2 := New("cars", carRel(), Capabilities{AllowNullBinding: true})
	rows, err := src2.Query(relation.NewQuery("cars", relation.IsNull("body_style")))
	if err != nil || len(rows) != 2 {
		t.Errorf("null binding allowed: rows=%d err=%v", len(rows), err)
	}
}

func TestBindableAttrs(t *testing.T) {
	src := New("cars", carRel(), Capabilities{BindableAttrs: []string{"make", "model"}})
	if !src.Supports("make") || src.Supports("year") {
		t.Error("Supports misreads bindable attrs")
	}
	_, err := src.Query(relation.NewQuery("cars", relation.Eq("year", relation.Int(2002))))
	if !errors.Is(err, ErrUnsupportedAttr) {
		t.Fatalf("err = %v, want ErrUnsupportedAttr", err)
	}
	// Unknown attribute also unsupported.
	_, err = src.Query(relation.NewQuery("cars", relation.Eq("price", relation.Int(1))))
	if !errors.Is(err, ErrUnsupportedAttr) {
		t.Fatalf("err = %v, want ErrUnsupportedAttr", err)
	}
}

func TestRangeRefusal(t *testing.T) {
	src := New("cars", carRel(), Capabilities{DisallowRange: true})
	_, err := src.Query(relation.NewQuery("cars", relation.Between("year", relation.Int(2001), relation.Int(2003))))
	if !errors.Is(err, ErrRangeBinding) {
		t.Fatalf("err = %v, want ErrRangeBinding", err)
	}
	// Equality still fine.
	if _, err := src.Query(relation.NewQuery("cars", relation.Eq("year", relation.Int(2002)))); err != nil {
		t.Errorf("equality should pass: %v", err)
	}
}

func TestMaxResults(t *testing.T) {
	src := New("cars", carRel(), Capabilities{MaxResults: 1})
	rows, err := src.Query(relation.NewQuery("cars", relation.Eq("make", relation.String("BMW"))))
	if err != nil || len(rows) != 1 {
		t.Errorf("MaxResults: rows=%d err=%v", len(rows), err)
	}
}

func TestQueryBudget(t *testing.T) {
	src := New("cars", carRel(), Capabilities{MaxQueries: 2})
	q := relation.NewQuery("cars", relation.Eq("make", relation.String("BMW")))
	for i := 0; i < 2; i++ {
		if _, err := src.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	_, err := src.Query(q)
	if !errors.Is(err, ErrQueryBudget) {
		t.Fatalf("err = %v, want ErrQueryBudget", err)
	}
}

func TestResetStats(t *testing.T) {
	src := New("cars", carRel(), Capabilities{})
	src.Query(relation.NewQuery("cars", relation.Eq("make", relation.String("BMW"))))
	src.ResetStats()
	if src.Stats() != (Stats{}) {
		t.Errorf("ResetStats: %+v", src.Stats())
	}
}

func TestEmptyQueryReturnsAll(t *testing.T) {
	src := New("cars", carRel(), Capabilities{})
	rows, err := src.Query(relation.NewQuery("cars"))
	if err != nil || len(rows) != 5 {
		t.Errorf("empty query rows=%d err=%v", len(rows), err)
	}
}

func TestConcurrentAccounting(t *testing.T) {
	src := New("cars", carRel(), Capabilities{})
	q := relation.NewQuery("cars", relation.Eq("make", relation.String("BMW")))
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src.Query(q)
		}()
	}
	wg.Wait()
	st := src.Stats()
	if st.Queries != 20 || st.TuplesReturned != 40 {
		t.Errorf("concurrent stats = %+v", st)
	}
}
