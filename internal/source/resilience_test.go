package source

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"qpiad/internal/faults"
	"qpiad/internal/relation"
)

func bmwQuery() relation.Query {
	return relation.NewQuery("cars", relation.Eq("make", relation.String("BMW")))
}

// TestFaultInjectionAttemptSemantics verifies forced first-attempt failures
// are dealt per the context's attempt tag and succeed past the threshold.
func TestFaultInjectionAttemptSemantics(t *testing.T) {
	src := New("cars", carRel(), Capabilities{})
	src.SetFaults(faults.New(faults.Profile{Seed: 1, FailFirstAttempts: 2}))

	for attempt := 1; attempt <= 2; attempt++ {
		ctx := faults.WithAttempt(context.Background(), attempt)
		if _, err := src.QueryCtx(ctx, bmwQuery()); !errors.Is(err, faults.ErrTransient) {
			t.Fatalf("attempt %d: want ErrTransient, got %v", attempt, err)
		}
	}
	rows, err := src.QueryCtx(faults.WithAttempt(context.Background(), 3), bmwQuery())
	if err != nil {
		t.Fatalf("attempt 3: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}

	st := src.Stats()
	// All three attempts were accepted (Queries), two failed (Errors), two
	// carried attempt > 1 (Retries), and only the success transferred rows.
	if st.Queries != 3 || st.Errors != 2 || st.Retries != 2 || st.TuplesReturned != 2 {
		t.Errorf("stats = %+v, want Queries 3, Errors 2, Retries 2, Tuples 2", st)
	}
	if st.Rejected != 0 {
		t.Errorf("failed attempts must not count as Rejected, got %d", st.Rejected)
	}
}

// TestContextCancellationDuringLatency verifies a context deadline shorter
// than the source latency aborts the query and counts an error.
func TestContextCancellationDuringLatency(t *testing.T) {
	src := New("cars", carRel(), Capabilities{Latency: 200 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := src.QueryCtx(ctx, bmwQuery())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("cancellation should interrupt the latency sleep, took %v", d)
	}
	st := src.Stats()
	if st.Queries != 1 || st.Errors != 1 || st.TuplesReturned != 0 {
		t.Errorf("stats = %+v, want one accepted errored query", st)
	}
}

// TestTimeoutFaultBlocksUntilDeadline verifies the injected-timeout
// semantics: with a deadline the attempt pays the full wait, without one it
// fails immediately.
func TestTimeoutFaultBlocksUntilDeadline(t *testing.T) {
	src := New("cars", carRel(), Capabilities{})
	src.SetFaults(faults.New(faults.Profile{Seed: 1, TimeoutRate: 1}))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := src.QueryCtx(ctx, bmwQuery())
	if !errors.Is(err, faults.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("timed-out attempt should block until its deadline, returned after %v", d)
	}

	// No deadline: immediate ErrTimeout.
	start = time.Now()
	if _, err := src.QueryCtx(context.Background(), bmwQuery()); !errors.Is(err, faults.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("deadline-less timeout should fail fast, took %v", d)
	}
}

// TestFaultTruncation verifies page truncation caps the result rows and
// still accounts the transferred tuples.
func TestFaultTruncation(t *testing.T) {
	src := New("cars", carRel(), Capabilities{})
	src.SetFaults(faults.New(faults.Profile{Seed: 1, TruncateRate: 1, TruncateTo: 1}))
	rows, err := src.Query(bmwQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want truncation to 1", len(rows))
	}
	if st := src.Stats(); st.TuplesReturned != 1 {
		t.Errorf("TuplesReturned = %d, want 1", st.TuplesReturned)
	}
}

// TestAdmitSignalOnlyOnAcceptance verifies the admission callback fires for
// accepted queries (even ones that later fail) and never for rejections.
func TestAdmitSignalOnlyOnAcceptance(t *testing.T) {
	src := New("cars", carRel(), Capabilities{})
	admits := 0
	ctx := WithAdmitSignal(context.Background(), func() { admits++ })

	if _, err := src.QueryCtx(ctx, bmwQuery()); err != nil {
		t.Fatal(err)
	}
	if admits != 1 {
		t.Fatalf("admits = %d after accepted query, want 1", admits)
	}

	// Rejection (null binding refused): no signal. Use a fresh signal so
	// the sync.Once from the first call doesn't mask a bug.
	admits = 0
	ctx = WithAdmitSignal(context.Background(),
		func() { admits++ })
	bad := relation.NewQuery("cars", relation.IsNull("body_style"))
	if _, err := src.QueryCtx(ctx, bad); !errors.Is(err, ErrNullBinding) {
		t.Fatalf("want ErrNullBinding, got %v", err)
	}
	if admits != 0 {
		t.Fatalf("admits = %d after rejection, want 0", admits)
	}

	// An accepted-but-failed attempt still signals: budget was consumed.
	admits = 0
	src.SetFaults(faults.New(faults.Profile{Seed: 1, FailFirstAttempts: 1}))
	ctx = WithAdmitSignal(context.Background(), func() { admits++ })
	if _, err := src.QueryCtx(ctx, bmwQuery()); !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("want ErrTransient, got %v", err)
	}
	if admits != 1 {
		t.Fatalf("admits = %d after accepted failing query, want 1", admits)
	}
}

// TestStatsConcurrent hammers one source from many goroutines (run under
// -race) and checks the totals add up exactly.
func TestStatsConcurrent(t *testing.T) {
	src := New("cars", carRel(), Capabilities{})
	src.SetFaults(faults.New(faults.Profile{Seed: 9, TransientRate: 0.5}))
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := relation.NewQuery("cars", relation.Eq("year", relation.Int(int64(2001+(w+i)%4))))
				_, _ = src.QueryCtx(context.Background(), q)
			}
		}(w)
	}
	wg.Wait()
	st := src.Stats()
	mt := src.Metrics()
	if st.Queries != workers*perWorker {
		t.Errorf("Queries = %d, want %d", st.Queries, workers*perWorker)
	}
	if mt.Latency.Count != st.Queries {
		t.Errorf("latency observations = %d, want one per accepted attempt (%d)", mt.Latency.Count, st.Queries)
	}
	if st.Errors == 0 {
		t.Error("expected some injected errors at rate 0.5")
	}
	if inj := src.Faults(); inj.Stats().Transients != st.Errors {
		t.Errorf("injector transients (%d) and source errors (%d) disagree",
			inj.Stats().Transients, st.Errors)
	}
}

// TestLatencyHistogram checks bucketing, Sum and Percentile behavior.
func TestLatencyHistogram(t *testing.T) {
	var l LatencyStats
	for _, d := range []time.Duration{
		500 * time.Nanosecond, // bucket 0 (<= 1µs)
		3 * time.Microsecond,  // bucket 2 (<= 4µs)
		100 * time.Microsecond,
		20 * time.Millisecond,
	} {
		l.observe(d)
	}
	if l.Count != 4 {
		t.Fatalf("Count = %d", l.Count)
	}
	wantSum := 500*time.Nanosecond + 3*time.Microsecond + 100*time.Microsecond + 20*time.Millisecond
	if l.Sum != wantSum {
		t.Fatalf("Sum = %v, want %v", l.Sum, wantSum)
	}
	if p := l.Percentile(0.25); p != time.Microsecond {
		t.Errorf("p25 = %v, want 1µs bound", p)
	}
	if p := l.Percentile(0.5); p != 4*time.Microsecond {
		t.Errorf("p50 = %v, want 4µs bound", p)
	}
	if p := l.Percentile(1); p < 20*time.Millisecond {
		t.Errorf("p100 = %v, want >= slowest observation", p)
	}
	if (LatencyStats{}).Percentile(0.5) != 0 {
		t.Error("empty histogram percentile must be 0")
	}
}

// TestBucketBound pins the exponential bucket layout.
func TestBucketBound(t *testing.T) {
	if BucketBound(0) != time.Microsecond {
		t.Errorf("bucket 0 bound = %v", BucketBound(0))
	}
	if BucketBound(10) != 1024*time.Microsecond {
		t.Errorf("bucket 10 bound = %v", BucketBound(10))
	}
	if BucketBound(latencyBuckets-1) != time.Duration(1<<63-1) {
		t.Error("last bucket must absorb everything")
	}
}

// TestResetStatsClearsEverything verifies counters, histogram and injector
// stats all reset.
func TestResetStatsClearsEverything(t *testing.T) {
	src := New("cars", carRel(), Capabilities{})
	src.SetFaults(faults.New(faults.Profile{Seed: 1, TransientRate: 1}))
	_, _ = src.Query(bmwQuery())
	src.ResetStats()
	if src.Stats() != (Stats{}) {
		t.Errorf("stats after reset = %+v", src.Stats())
	}
	if src.Metrics().Latency.Count != 0 {
		t.Error("latency histogram must reset")
	}
	if src.Faults().Stats() != (faults.Stats{}) {
		t.Error("injector stats must reset")
	}
}

// TestQueryCtxMatchesQuery verifies the compat wrapper is the ctx-less
// path: same rows, same accounting.
func TestQueryCtxMatchesQuery(t *testing.T) {
	a := New("cars", carRel(), Capabilities{})
	b := New("cars", carRel(), Capabilities{})
	ra, errA := a.Query(bmwQuery())
	rb, errB := b.QueryCtx(context.Background(), bmwQuery())
	if (errA == nil) != (errB == nil) || len(ra) != len(rb) {
		t.Fatalf("Query vs QueryCtx diverge: %v/%d vs %v/%d", errA, len(ra), errB, len(rb))
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestBudgetRejectionFast confirms budget refusals stay immediate even with
// an injector attached (no fault latency on the rejection path).
func TestBudgetRejectionFast(t *testing.T) {
	src := New("cars", carRel(), Capabilities{MaxQueries: 1, Latency: 50 * time.Millisecond})
	src.SetFaults(faults.New(faults.Profile{Seed: 1, LatencyJitter: 50 * time.Millisecond}))
	if _, err := src.Query(bmwQuery()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := src.Query(bmwQuery())
	if !errors.Is(err, ErrQueryBudget) {
		t.Fatalf("want ErrQueryBudget, got %v", err)
	}
	if d := time.Since(start); d > 3*time.Millisecond {
		t.Errorf("budget rejection should be immediate, took %v", d)
	}
	if st := src.Stats(); st.Rejected != 1 || st.Queries != 1 {
		t.Errorf("stats = %+v, want 1 accepted + 1 rejected", st)
	}
}
