package source

import (
	"context"
	"errors"
	"testing"
	"time"

	"qpiad/internal/breaker"
	"qpiad/internal/faults"
	"qpiad/internal/relation"
)

func trippyConfig() breaker.Config {
	return breaker.Config{
		Window:              8,
		MinSamples:          4,
		ConsecutiveFailures: 2,
		OpenTimeout:         time.Hour, // stays open for the whole test
	}
}

// TestBreakerOpenRejection verifies an open circuit rejects queries with a
// breaker.ErrOpen-wrapping error, consumes no budget, transfers nothing,
// and is accounted under BreakerRejected (not Rejected or Errors).
func TestBreakerOpenRejection(t *testing.T) {
	src := New("cars", carRel(), Capabilities{MaxQueries: 100})
	src.SetFaults(faults.New(faults.Profile{FlapDown: 1})) // always down
	src.SetBreaker(breaker.New("cars", trippyConfig()))

	// Two transient failures trip the circuit.
	for i := 0; i < 2; i++ {
		if _, err := src.QueryCtx(context.Background(), bmwQuery()); !errors.Is(err, faults.ErrTransient) {
			t.Fatalf("attempt %d: want ErrTransient, got %v", i, err)
		}
	}
	if st := src.Breaker().State(); st != breaker.StateOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	queriesBefore := src.Stats().Queries

	_, err := src.QueryCtx(context.Background(), bmwQuery())
	if !errors.Is(err, breaker.ErrOpen) {
		t.Fatalf("want breaker.ErrOpen, got %v", err)
	}
	// Open-circuit rejections are distinguishable from real source errors.
	if errors.Is(err, faults.ErrTransient) || faults.Retryable(err) {
		t.Fatalf("open-circuit rejection must not look transient/retryable: %v", err)
	}

	st := src.Stats()
	if st.Queries != queriesBefore {
		t.Errorf("rejected query consumed budget: Queries %d -> %d", queriesBefore, st.Queries)
	}
	if st.BreakerRejected != 1 {
		t.Errorf("BreakerRejected = %d, want 1", st.BreakerRejected)
	}
	if st.Rejected != 0 {
		t.Errorf("breaker rejection must not count as capability Rejected, got %d", st.Rejected)
	}
}

// TestBreakerCapabilityRejectionsNeutral verifies deterministic capability
// refusals never reach the breaker: they cannot trip the circuit.
func TestBreakerCapabilityRejectionsNeutral(t *testing.T) {
	src := New("cars", carRel(), Capabilities{})
	src.SetBreaker(breaker.New("cars", trippyConfig()))

	nullQ := relation.NewQuery("cars", relation.IsNull("body_style"))
	for i := 0; i < 10; i++ {
		if _, err := src.QueryCtx(context.Background(), nullQ); !errors.Is(err, ErrNullBinding) {
			t.Fatalf("want ErrNullBinding, got %v", err)
		}
	}
	snap := src.Breaker().Snapshot()
	if snap.State != breaker.StateClosed || snap.Failures != 0 {
		t.Fatalf("capability rejections fed the breaker: %+v", snap)
	}
}

// TestBreakerBudgetRefusalNeutral verifies budget exhaustion after
// admission settles the breaker call as neutral — it releases any probe
// slot but never counts as a source failure.
func TestBreakerBudgetRefusalNeutral(t *testing.T) {
	src := New("cars", carRel(), Capabilities{MaxQueries: 1})
	src.SetBreaker(breaker.New("cars", trippyConfig()))

	if _, err := src.QueryCtx(context.Background(), bmwQuery()); err != nil {
		t.Fatalf("first query: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := src.QueryCtx(context.Background(), bmwQuery()); !errors.Is(err, ErrQueryBudget) {
			t.Fatalf("want ErrQueryBudget, got %v", err)
		}
	}
	snap := src.Breaker().Snapshot()
	if snap.State != breaker.StateClosed || snap.Failures != 0 || snap.Neutrals != 5 {
		t.Fatalf("budget refusals must settle neutral: %+v", snap)
	}
}

// TestBreakerOutcomeClassification verifies what each outcome kind teaches
// the breaker: successes and transient failures feed it, cancellation is
// neutral.
func TestBreakerOutcomeClassification(t *testing.T) {
	src := New("cars", carRel(), Capabilities{Latency: 50 * time.Millisecond})
	cfg := trippyConfig()
	cfg.ConsecutiveFailures = 100 // observe without tripping
	src.SetBreaker(breaker.New("cars", cfg))

	if _, err := src.QueryCtx(context.Background(), bmwQuery()); err != nil {
		t.Fatalf("success query: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := src.QueryCtx(ctx, bmwQuery()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	snap := src.Breaker().Snapshot()
	if snap.Successes != 1 || snap.Failures != 0 || snap.Neutrals != 1 {
		t.Fatalf("snapshot = %+v, want 1 success, 1 neutral", snap)
	}
}

// TestBreakerHalfOpenProbeRecovery drives the full closed → open →
// half-open → closed cycle through the source with a scripted flap and a
// manual clock.
func TestBreakerHalfOpenProbeRecovery(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	cfg := breaker.Config{
		Window:              8,
		MinSamples:          4,
		ConsecutiveFailures: 2,
		OpenTimeout:         time.Second,
		CloseAfter:          2,
		Clock:               clock,
	}
	src := New("cars", carRel(), Capabilities{})
	// Down for 2 attempts, then up for good (a long up window).
	src.SetFaults(faults.New(faults.Profile{FlapUp: 0, FlapDown: 2}))
	b := breaker.New("cars", cfg)
	src.SetBreaker(b)

	// Flap ordinals 0,1 are down (0 % 2 >= 0): two failures trip it.
	// (FlapUp=0 means the first FlapDown ordinals of each period fail; with
	// period == FlapDown the schedule is "always down", so detach faults
	// after the trip to model recovery.)
	for i := 0; i < 2; i++ {
		if _, err := src.QueryCtx(context.Background(), bmwQuery()); err == nil {
			t.Fatalf("flap-down attempt %d unexpectedly succeeded", i)
		}
	}
	if st := b.State(); st != breaker.StateOpen {
		t.Fatalf("state = %v, want open", st)
	}
	src.SetFaults(nil) // source recovers while the circuit is open

	// Still inside OpenTimeout: rejected.
	if _, err := src.QueryCtx(context.Background(), bmwQuery()); !errors.Is(err, breaker.ErrOpen) {
		t.Fatalf("want ErrOpen inside OpenTimeout, got %v", err)
	}
	now = now.Add(time.Second)

	// Two successful probes close the circuit.
	for i := 0; i < 2; i++ {
		if _, err := src.QueryCtx(context.Background(), bmwQuery()); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	if st := b.State(); st != breaker.StateClosed {
		t.Fatalf("state after probes = %v, want closed", st)
	}
	if _, err := src.QueryCtx(context.Background(), bmwQuery()); err != nil {
		t.Fatalf("post-recovery query: %v", err)
	}
}

// TestHedgeTagAccounting verifies hedge-tagged attempts count under Hedged,
// not Retries.
func TestHedgeTagAccounting(t *testing.T) {
	src := New("cars", carRel(), Capabilities{})
	ctx := faults.WithHedge(faults.WithAttempt(context.Background(), 2))
	if _, err := src.QueryCtx(ctx, bmwQuery()); err != nil {
		t.Fatalf("hedged query: %v", err)
	}
	st := src.Stats()
	if st.Hedged != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want Hedged=1 Retries=0", st)
	}
}
