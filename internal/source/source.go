// Package source simulates autonomous web databases as QPIAD sees them: a
// relation hidden behind a form-style query interface with restricted
// access patterns. The mediator can only interact with a Source through
// Query, which enforces the capability profile the paper assumes:
//
//   - only attributes exposed by the local schema (and declared bindable)
//     can be constrained;
//   - null values cannot be bound ("list cars whose Body Style is missing"
//     is rejected) unless the profile explicitly allows it — the paper
//     notes web sources such as Yahoo! Autos, Cars.com and Realtor.com
//     refuse such queries, while the AllReturned/AllRanked baselines
//     require them;
//   - results may be truncated at a per-query cap, and a total query budget
//     may be imposed (the paper's "limits on the number of queries we can
//     pose to the autonomous source").
//
// Sources can additionally misbehave: attach a faults.Injector (SetFaults)
// and accepted queries suffer deterministic, seeded transient errors,
// timeouts, latency jitter and page truncation. QueryCtx honors context
// deadlines and cancellation, so the mediator can bound how long it waits.
//
// Every query, transferred tuple, failed attempt and retry is accounted,
// which is what the efficiency evaluation (Figure 8) and the /metrics
// endpoint read.
package source

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qpiad/internal/breaker"
	"qpiad/internal/faults"
	"qpiad/internal/relation"
)

// Typed errors the mediator can branch on.
var (
	// ErrUnsupportedAttr marks a predicate on an attribute the source does
	// not expose or does not allow binding.
	ErrUnsupportedAttr = errors.New("source: unsupported query attribute")
	// ErrNullBinding marks an is-null predicate against a source that
	// refuses null bindings.
	ErrNullBinding = errors.New("source: null value binding not supported")
	// ErrQueryBudget marks exhaustion of the source's query budget.
	ErrQueryBudget = errors.New("source: query budget exhausted")
	// ErrRangeBinding marks a range predicate against an equality-only form.
	ErrRangeBinding = errors.New("source: range predicates not supported")
)

// Capabilities is a source's access-pattern profile.
type Capabilities struct {
	// BindableAttrs restricts which attributes may carry predicates. Empty
	// means every local-schema attribute is bindable.
	BindableAttrs []string
	// AllowNullBinding permits is-null predicates. Web sources in the paper
	// do not support this; it exists so the AllReturned and AllRanked
	// baselines can be run at all.
	AllowNullBinding bool
	// DisallowRange rejects range (between/</>) predicates, modelling
	// equality-only web forms.
	DisallowRange bool
	// MaxResults truncates each result set (0 = unlimited), modelling
	// paginated web sources that expose only the top of a result.
	MaxResults int
	// MaxQueries is the total query budget (0 = unlimited).
	MaxQueries int
	// Latency is a simulated per-query network/processing delay, applied
	// to every accepted query. It makes the cost of issuing many rewritten
	// queries — and the benefit of issuing them concurrently — observable
	// in experiments and benchmarks.
	Latency time.Duration
}

// Stats is the access accounting the efficiency evaluation reads.
type Stats struct {
	// Queries is the number of accepted query attempts (retries included:
	// each retry is a fresh submission of the web form).
	Queries int
	// TuplesReturned is the total number of tuples transferred. Failed
	// attempts transfer nothing, so retries never double-count.
	TuplesReturned int
	// Rejected is the number of queries refused for capability reasons
	// (unsupported binding, null binding, range binding, budget).
	Rejected int
	// Errors is the number of accepted attempts that subsequently failed:
	// injected transient errors, timeouts, context cancellation.
	Errors int
	// Retries is the number of accepted attempts beyond each query's first
	// (attempt number > 1, as tagged by the mediator's retry loop). Hedged
	// attempts are counted separately under Hedged.
	Retries int
	// BreakerRejected is the number of queries refused at admission by an
	// attached circuit breaker (circuit open / probes busy). These never
	// reach the source: no budget is consumed and no latency is paid, so
	// they are accounted apart from capability Rejected.
	BreakerRejected int
	// Hedged is the number of accepted attempts that were the hedge leg of
	// a raced pair (tagged by the mediator's hedging path). Kept apart from
	// Retries so source-load numbers distinguish "asked again because it
	// failed" from "asked twice to cut tail latency".
	Hedged int
}

// latencyBuckets is the histogram resolution: bucket i holds observations
// with duration <= 1µs << i, the last bucket is the overflow.
const latencyBuckets = 24

// LatencyStats is a fixed-bucket exponential latency histogram over the
// service time of accepted query attempts (successes and failures).
type LatencyStats struct {
	// Count is the number of observations.
	Count int
	// Sum is the total observed duration.
	Sum time.Duration
	// Buckets[i] counts observations <= BucketBound(i); the last bucket
	// absorbs everything slower.
	Buckets [latencyBuckets]int
}

// BucketBound returns the inclusive upper bound of histogram bucket i.
func BucketBound(i int) time.Duration {
	if i >= latencyBuckets-1 {
		return time.Duration(1<<63 - 1)
	}
	return time.Microsecond << i
}

// observe files one duration.
func (l *LatencyStats) observe(d time.Duration) {
	l.Count++
	l.Sum += d
	for i := 0; i < latencyBuckets; i++ {
		if d <= BucketBound(i) {
			l.Buckets[i]++
			return
		}
	}
}

// Percentile returns the upper bound of the bucket holding the p-th
// quantile (p in [0, 1]), 0 when nothing was observed. Bucket bounds make
// it an over-estimate by at most one bucket width.
func (l LatencyStats) Percentile(p float64) time.Duration {
	if l.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int(p * float64(l.Count))
	if target < 1 {
		target = 1
	}
	cum := 0
	for i := 0; i < latencyBuckets; i++ {
		cum += l.Buckets[i]
		if cum >= target {
			if i == latencyBuckets-1 {
				return l.Sum // overflow bucket: sum is the only honest bound
			}
			return BucketBound(i)
		}
	}
	return l.Sum
}

// Metrics bundles a source's full accounting: counters plus the latency
// histogram. This is what GET /metrics serializes.
type Metrics struct {
	Stats
	Latency LatencyStats
}

// Source wraps a backing relation behind the restricted interface.
type Source struct {
	name string
	rel  *relation.Relation
	caps Capabilities

	bindable map[string]bool // nil when all local attributes are bindable

	mu      sync.Mutex
	stats   Stats
	latency LatencyStats
	faults  *faults.Injector
	breaker *breaker.Breaker
}

// New wraps rel as an autonomous source with the given capabilities.
// The relation's schema is the source's local schema.
func New(name string, rel *relation.Relation, caps Capabilities) *Source {
	s := &Source{name: name, rel: rel, caps: caps}
	if len(caps.BindableAttrs) > 0 {
		s.bindable = make(map[string]bool, len(caps.BindableAttrs))
		for _, a := range caps.BindableAttrs {
			s.bindable[a] = true
		}
	}
	return s
}

// Name returns the source name.
func (s *Source) Name() string { return s.name }

// Schema returns the source's exported (local) schema.
func (s *Source) Schema() *relation.Schema { return s.rel.Schema }

// Capabilities returns the source's access profile.
func (s *Source) Capabilities() Capabilities { return s.caps }

// SetFaults attaches (or, with nil, detaches) a fault injector. Accepted
// queries then suffer the injector's seeded faults. Call before serving
// queries; the injector itself is concurrency-safe.
func (s *Source) SetFaults(in *faults.Injector) {
	s.mu.Lock()
	s.faults = in
	s.mu.Unlock()
}

// Faults returns the attached fault injector, nil when the source is
// perfectly reliable.
func (s *Source) Faults() *faults.Injector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// SetBreaker attaches (or, with nil, detaches) a circuit breaker. Every
// QueryCtx then passes through its admission check: open-circuit
// rejections return an error wrapping breaker.ErrOpen without consuming
// budget or touching the backing relation, and every admitted attempt's
// outcome feeds the breaker's failure window and health score. The breaker
// itself is concurrency-safe.
func (s *Source) SetBreaker(b *breaker.Breaker) {
	s.mu.Lock()
	s.breaker = b
	s.mu.Unlock()
}

// Breaker returns the attached circuit breaker, nil when admission is
// unguarded.
func (s *Source) Breaker() *breaker.Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.breaker
}

// Size returns the source's cardinality. Real autonomous sources do not
// advertise this; it exists for oracular evaluation and dataset setup, not
// for the mediator's online path.
func (s *Source) Size() int { return s.rel.Len() }

// Relation exposes the backing relation for oracular evaluation only.
func (s *Source) Relation() *relation.Relation { return s.rel }

// Supports reports whether the named attribute exists in the local schema
// and accepts predicate bindings.
func (s *Source) Supports(attr string) bool {
	if !s.rel.Schema.Has(attr) {
		return false
	}
	if s.bindable == nil {
		return true
	}
	return s.bindable[attr]
}

// validate checks q against the capability profile.
func (s *Source) validate(q relation.Query) error {
	for _, p := range q.Preds {
		if !s.Supports(p.Attr) {
			return fmt.Errorf("%w: %q on source %s", ErrUnsupportedAttr, p.Attr, s.name)
		}
		switch p.Op {
		case relation.OpIsNull:
			if !s.caps.AllowNullBinding {
				return fmt.Errorf("%w: %q on source %s", ErrNullBinding, p.Attr, s.name)
			}
		case relation.OpEq, relation.OpNotNull:
			// always acceptable
		default:
			if s.caps.DisallowRange {
				return fmt.Errorf("%w: %s on source %s", ErrRangeBinding, p, s.name)
			}
		}
	}
	return nil
}

// admitSignalKey carries the mediator's admission callback.
type admitSignalKey struct{}

// WithAdmitSignal arranges for fn to be called (at most once) the moment
// the source ACCEPTS the query — capability checks passed and budget
// consumed, before execution starts. Rejected queries do not signal. The
// mediator's parallel fetch path uses this to serialize budget consumption
// across concurrent rewrites: the next query is released only once the
// previous one's budget decision is final.
func WithAdmitSignal(ctx context.Context, fn func()) context.Context {
	var once sync.Once
	return context.WithValue(ctx, admitSignalKey{}, func() { once.Do(fn) })
}

// signalAdmit fires the admission callback, if any.
func signalAdmit(ctx context.Context) {
	if fn, ok := ctx.Value(admitSignalKey{}).(func()); ok {
		fn()
	}
}

// Query runs q against the source under its capability profile and returns
// copies of the matching tuples (the "transferred" rows). It is QueryCtx
// without deadline or cancellation.
func (s *Source) Query(q relation.Query) ([]relation.Tuple, error) {
	//lint:allow ctxflow audited root: context-free convenience wrapper over QueryCtx
	return s.QueryCtx(context.Background(), q)
}

// QueryCtx runs q under the capability profile, honoring the context's
// deadline/cancellation, the attached fault injector, and the attached
// circuit breaker. Aggregate parts of q are ignored: autonomous web
// sources return tuples, and the mediator aggregates. Rejected queries —
// capability refusals and open-circuit admission refusals alike — do not
// consume budget and pay no latency; accepted attempts are accounted
// (Queries, plus Retries or Hedged per the context's tags) even when they
// subsequently fail, and their outcome is reported to the breaker:
// transient/timeout failures feed its failure window, successes feed its
// health score, and cancellations are neutral.
func (s *Source) QueryCtx(ctx context.Context, q relation.Query) (_ []relation.Tuple, err error) {
	if err := s.validate(q); err != nil {
		s.mu.Lock()
		s.stats.Rejected++
		s.mu.Unlock()
		return nil, err
	}
	attempt := faults.Attempt(ctx)
	s.mu.Lock()
	br := s.breaker
	s.mu.Unlock()
	var call *breaker.Call
	if br != nil {
		c, aerr := br.Allow()
		if aerr != nil {
			s.mu.Lock()
			s.stats.BreakerRejected++
			s.mu.Unlock()
			return nil, fmt.Errorf("source %s: %w", s.name, aerr)
		}
		call = c
	}
	s.mu.Lock()
	if s.caps.MaxQueries > 0 && s.stats.Queries >= s.caps.MaxQueries {
		s.stats.Rejected++
		s.mu.Unlock()
		// A budget refusal says nothing about source health: release the
		// admitted call without feeding the failure window.
		call.Observe(0, breaker.ClassNeutral)
		return nil, fmt.Errorf("%w: source %s (budget %d)", ErrQueryBudget, s.name, s.caps.MaxQueries)
	}
	s.stats.Queries++
	if faults.IsHedge(ctx) {
		s.stats.Hedged++
	} else if attempt > 1 {
		s.stats.Retries++
	}
	inj := s.faults
	s.mu.Unlock()
	signalAdmit(ctx) // budget decision is final: release the next query

	start := time.Now()
	defer func() { call.Observe(time.Since(start), classify(err)) }()
	var fault faults.Outcome
	if inj != nil {
		fault = inj.Decide(s.name, q.Key(), attempt)
	}

	// A timed-out attempt blocks until its deadline actually expires (the
	// caller pays the wait), or fails immediately when it has none.
	if fault.Err != nil && errors.Is(fault.Err, faults.ErrTimeout) {
		if _, hasDeadline := ctx.Deadline(); hasDeadline {
			<-ctx.Done()
		}
		s.recordFailure(start)
		return nil, fault.Err
	}

	if delay := s.caps.Latency + fault.Latency; delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			s.recordFailure(start)
			return nil, fmt.Errorf("source %s: %w", s.name, ctx.Err())
		}
	}
	if fault.Err != nil {
		s.recordFailure(start)
		return nil, fault.Err
	}
	if err := ctx.Err(); err != nil {
		s.recordFailure(start)
		return nil, fmt.Errorf("source %s: %w", s.name, err)
	}

	// Stream the scan instead of materializing Select's full result: the
	// result cap (capability MaxResults and/or an injected page truncation)
	// is pushed into the pipeline, so a truncated page over a huge relation
	// stops scanning — and stops paying Clone — at the cap. Cloning at the
	// yield is the wire boundary: returned tuples never alias the backing
	// relation's store.
	limit := 0 // 0 = unlimited
	if s.caps.MaxResults > 0 {
		limit = s.caps.MaxResults
	}
	if fault.TruncateTo > 0 && (limit == 0 || fault.TruncateTo < limit) {
		limit = fault.TruncateTo
	}
	scan := s.rel.Scan(q)
	if limit > 0 {
		scan = scan.Take(limit)
	}
	out := scan.Cloned().Collect()
	elapsed := time.Since(start)
	s.mu.Lock()
	s.stats.TuplesReturned += len(out)
	s.latency.observe(elapsed)
	s.mu.Unlock()
	return out, nil
}

// classify maps an attempt outcome to what it teaches the breaker:
// transient faults and timeouts are failures; caller cancellation and
// anything else deterministic is neutral (it says nothing about source
// health).
func classify(err error) breaker.Class {
	switch {
	case err == nil:
		return breaker.ClassSuccess
	case errors.Is(err, context.Canceled):
		return breaker.ClassNeutral
	case faults.Retryable(err):
		return breaker.ClassFailure
	default:
		return breaker.ClassNeutral
	}
}

// recordFailure accounts one accepted-but-failed attempt.
func (s *Source) recordFailure(start time.Time) {
	elapsed := time.Since(start)
	s.mu.Lock()
	s.stats.Errors++
	s.latency.observe(elapsed)
	s.mu.Unlock()
}

// Stats returns a snapshot of the access accounting.
func (s *Source) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Metrics returns the full accounting snapshot: counters plus the latency
// histogram.
func (s *Source) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Metrics{Stats: s.stats, Latency: s.latency}
}

// ResetStats zeroes the accounting (between experiment runs), including the
// latency histogram and any attached injector's fault counters.
func (s *Source) ResetStats() {
	s.mu.Lock()
	s.stats = Stats{}
	s.latency = LatencyStats{}
	inj := s.faults
	s.mu.Unlock()
	if inj != nil {
		inj.ResetStats()
	}
}
