// Package source simulates autonomous web databases as QPIAD sees them: a
// relation hidden behind a form-style query interface with restricted
// access patterns. The mediator can only interact with a Source through
// Query, which enforces the capability profile the paper assumes:
//
//   - only attributes exposed by the local schema (and declared bindable)
//     can be constrained;
//   - null values cannot be bound ("list cars whose Body Style is missing"
//     is rejected) unless the profile explicitly allows it — the paper
//     notes web sources such as Yahoo! Autos, Cars.com and Realtor.com
//     refuse such queries, while the AllReturned/AllRanked baselines
//     require them;
//   - results may be truncated at a per-query cap, and a total query budget
//     may be imposed (the paper's "limits on the number of queries we can
//     pose to the autonomous source").
//
// Every query and transferred tuple is accounted, which is what the
// efficiency evaluation (Figure 8) measures.
package source

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"qpiad/internal/relation"
)

// Typed errors the mediator can branch on.
var (
	// ErrUnsupportedAttr marks a predicate on an attribute the source does
	// not expose or does not allow binding.
	ErrUnsupportedAttr = errors.New("source: unsupported query attribute")
	// ErrNullBinding marks an is-null predicate against a source that
	// refuses null bindings.
	ErrNullBinding = errors.New("source: null value binding not supported")
	// ErrQueryBudget marks exhaustion of the source's query budget.
	ErrQueryBudget = errors.New("source: query budget exhausted")
	// ErrRangeBinding marks a range predicate against an equality-only form.
	ErrRangeBinding = errors.New("source: range predicates not supported")
)

// Capabilities is a source's access-pattern profile.
type Capabilities struct {
	// BindableAttrs restricts which attributes may carry predicates. Empty
	// means every local-schema attribute is bindable.
	BindableAttrs []string
	// AllowNullBinding permits is-null predicates. Web sources in the paper
	// do not support this; it exists so the AllReturned and AllRanked
	// baselines can be run at all.
	AllowNullBinding bool
	// DisallowRange rejects range (between/</>) predicates, modelling
	// equality-only web forms.
	DisallowRange bool
	// MaxResults truncates each result set (0 = unlimited), modelling
	// paginated web sources that expose only the top of a result.
	MaxResults int
	// MaxQueries is the total query budget (0 = unlimited).
	MaxQueries int
	// Latency is a simulated per-query network/processing delay, applied
	// to every accepted query. It makes the cost of issuing many rewritten
	// queries — and the benefit of issuing them concurrently — observable
	// in experiments and benchmarks.
	Latency time.Duration
}

// Stats is the access accounting the efficiency evaluation reads.
type Stats struct {
	// Queries is the number of accepted queries.
	Queries int
	// TuplesReturned is the total number of tuples transferred.
	TuplesReturned int
	// Rejected is the number of queries refused for capability reasons.
	Rejected int
}

// Source wraps a backing relation behind the restricted interface.
type Source struct {
	name string
	rel  *relation.Relation
	caps Capabilities

	bindable map[string]bool // nil when all local attributes are bindable

	mu    sync.Mutex
	stats Stats
}

// New wraps rel as an autonomous source with the given capabilities.
// The relation's schema is the source's local schema.
func New(name string, rel *relation.Relation, caps Capabilities) *Source {
	s := &Source{name: name, rel: rel, caps: caps}
	if len(caps.BindableAttrs) > 0 {
		s.bindable = make(map[string]bool, len(caps.BindableAttrs))
		for _, a := range caps.BindableAttrs {
			s.bindable[a] = true
		}
	}
	return s
}

// Name returns the source name.
func (s *Source) Name() string { return s.name }

// Schema returns the source's exported (local) schema.
func (s *Source) Schema() *relation.Schema { return s.rel.Schema }

// Capabilities returns the source's access profile.
func (s *Source) Capabilities() Capabilities { return s.caps }

// Size returns the source's cardinality. Real autonomous sources do not
// advertise this; it exists for oracular evaluation and dataset setup, not
// for the mediator's online path.
func (s *Source) Size() int { return s.rel.Len() }

// Relation exposes the backing relation for oracular evaluation only.
func (s *Source) Relation() *relation.Relation { return s.rel }

// Supports reports whether the named attribute exists in the local schema
// and accepts predicate bindings.
func (s *Source) Supports(attr string) bool {
	if !s.rel.Schema.Has(attr) {
		return false
	}
	if s.bindable == nil {
		return true
	}
	return s.bindable[attr]
}

// validate checks q against the capability profile.
func (s *Source) validate(q relation.Query) error {
	for _, p := range q.Preds {
		if !s.Supports(p.Attr) {
			return fmt.Errorf("%w: %q on source %s", ErrUnsupportedAttr, p.Attr, s.name)
		}
		switch p.Op {
		case relation.OpIsNull:
			if !s.caps.AllowNullBinding {
				return fmt.Errorf("%w: %q on source %s", ErrNullBinding, p.Attr, s.name)
			}
		case relation.OpEq, relation.OpNotNull:
			// always acceptable
		default:
			if s.caps.DisallowRange {
				return fmt.Errorf("%w: %s on source %s", ErrRangeBinding, p, s.name)
			}
		}
	}
	return nil
}

// Query runs q against the source under its capability profile and returns
// copies of the matching tuples (the "transferred" rows). Aggregate parts of
// q are ignored: autonomous web sources return tuples, and the mediator
// aggregates. Rejected queries do not consume budget.
func (s *Source) Query(q relation.Query) ([]relation.Tuple, error) {
	if err := s.validate(q); err != nil {
		s.mu.Lock()
		s.stats.Rejected++
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Lock()
	if s.caps.MaxQueries > 0 && s.stats.Queries >= s.caps.MaxQueries {
		s.stats.Rejected++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: source %s (budget %d)", ErrQueryBudget, s.name, s.caps.MaxQueries)
	}
	s.stats.Queries++
	s.mu.Unlock()

	if s.caps.Latency > 0 {
		time.Sleep(s.caps.Latency)
	}
	rows := s.rel.Select(q)
	if s.caps.MaxResults > 0 && len(rows) > s.caps.MaxResults {
		rows = rows[:s.caps.MaxResults]
	}
	out := make([]relation.Tuple, len(rows))
	for i, t := range rows {
		out[i] = t.Clone()
	}
	s.mu.Lock()
	s.stats.TuplesReturned += len(out)
	s.mu.Unlock()
	return out, nil
}

// Stats returns a snapshot of the access accounting.
func (s *Source) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the accounting (between experiment runs).
func (s *Source) ResetStats() {
	s.mu.Lock()
	s.stats = Stats{}
	s.mu.Unlock()
}
