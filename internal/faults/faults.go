// Package faults simulates the failure modes of autonomous web sources:
// transient errors, hard timeouts, per-query latency jitter, and truncated
// result pages. QPIAD's premise is that sources are uncooperative; this
// package makes them *reproducibly* uncooperative, so every experiment and
// test can replay the exact same flaky source.
//
// Determinism is the core contract. A fault decision is a pure function of
// (profile seed, source name, query key, attempt number) — it does not
// depend on wall-clock time, goroutine scheduling, or the order in which
// concurrent queries reach the source. Two runs with the same seed see the
// same faults even when the mediator issues rewrites in parallel, which is
// what makes graceful-degradation results byte-for-byte reproducible.
package faults

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// Typed fault errors the mediator's retry policy classifies on.
var (
	// ErrTransient marks a query attempt that failed for a transient,
	// retryable reason (dropped connection, HTTP 503, parse glitch).
	ErrTransient = errors.New("faults: transient source error")
	// ErrTimeout marks a query attempt that exceeded its deadline. When the
	// attempt carries a context deadline the source blocks until it expires
	// before returning this error, so the caller pays the real cost.
	ErrTimeout = errors.New("faults: source timed out")
)

// Retryable reports whether an error is worth retrying: injected transient
// errors and timeouts are; capability rejections and budget exhaustion are
// deterministic refusals and are not.
func Retryable(err error) bool {
	return errors.Is(err, ErrTransient) ||
		errors.Is(err, ErrTimeout) ||
		errors.Is(err, context.DeadlineExceeded)
}

// Profile describes one source's failure behavior. The zero value injects
// nothing.
type Profile struct {
	// Seed drives every fault decision. Decisions are deterministic per
	// (Seed, source, query key, attempt); concurrency cannot reorder them.
	Seed int64
	// TransientRate is the per-attempt probability of ErrTransient.
	TransientRate float64
	// TimeoutRate is the per-attempt probability of a hard timeout: the
	// attempt blocks until its context deadline expires (or fails
	// immediately when it has none) and returns ErrTimeout.
	TimeoutRate float64
	// LatencyJitter adds a uniform [0, LatencyJitter) delay to every
	// accepted attempt, on top of the source's base Capabilities.Latency.
	LatencyJitter time.Duration
	// TruncateRate is the per-attempt probability that a successful result
	// page is cut to TruncateTo rows — modelling a source that silently
	// returns a partial page under load.
	TruncateRate float64
	// TruncateTo is the row cap applied on truncation (min 1).
	TruncateTo int
	// FailFirstAttempts deterministically fails every query's first N
	// attempts with ErrTransient, regardless of TransientRate — the knob
	// retry tests use to exercise the backoff path without probability.
	FailFirstAttempts int
	// FlapUp / FlapDown script a deterministic flap schedule: the source
	// serves FlapUp accepted attempts normally, then fails the next
	// FlapDown attempts with ErrTransient, repeating. The window position
	// is keyed by the injector's attempt ordinal (the number of Decide
	// calls so far), so a sequentially-issued workload sees the exact same
	// up/down pattern every run — the reproducibility knob behind breaker
	// open/half-open/close transition tests and the ext-resilience flap
	// experiment. FlapDown <= 0 disables the schedule.
	FlapUp   int
	FlapDown int
}

// Enabled reports whether the profile can inject anything at all.
func (p Profile) Enabled() bool {
	return p.TransientRate > 0 || p.TimeoutRate > 0 || p.LatencyJitter > 0 ||
		p.TruncateRate > 0 || p.FailFirstAttempts > 0 || p.FlapDown > 0
}

// Outcome is one attempt's fault decision.
type Outcome struct {
	// Err is non-nil when the attempt must fail (ErrTransient/ErrTimeout,
	// wrapped with source/attempt context).
	Err error
	// Latency is extra delay applied to the attempt before it resolves.
	Latency time.Duration
	// TruncateTo, when > 0, caps the attempt's result rows.
	TruncateTo int
}

// Stats counts the faults an injector has actually dealt.
type Stats struct {
	// Decisions is the number of Decide calls (one per accepted attempt).
	Decisions int
	// Transients / Timeouts / Truncations count injected faults by kind.
	Transients  int
	Timeouts    int
	Truncations int
	// FlapFailures counts attempts failed by the scripted flap schedule
	// (a subset of Transients).
	FlapFailures int
}

// Injector deals faults per an immutable Profile and counts what it dealt.
// It is safe for concurrent use. When the profile scripts a flap schedule,
// the Decisions counter doubles as the attempt ordinal that positions each
// attempt in the up/down cycle.
type Injector struct {
	p  Profile
	mu sync.Mutex
	st Stats
}

// New builds an injector for the profile.
func New(p Profile) *Injector {
	if p.TruncateRate > 0 && p.TruncateTo < 1 {
		p.TruncateTo = 1
	}
	return &Injector{p: p}
}

// Profile returns the injector's profile.
func (in *Injector) Profile() Profile { return in.p }

// Stats returns a snapshot of the injected-fault accounting.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.st
}

// ResetStats zeroes the accounting (between experiment runs).
func (in *Injector) ResetStats() {
	in.mu.Lock()
	in.st = Stats{}
	in.mu.Unlock()
}

// Decide returns the fault outcome for one query attempt. The seeded
// decision is a pure function of (profile seed, source, queryKey, attempt).
// A scripted flap schedule (FlapUp/FlapDown) is additionally keyed by the
// attempt ordinal — the injector's Decide count — and overrides the seeded
// draws during down windows; it is exactly reproducible for sequentially
// issued workloads.
func (in *Injector) Decide(source, queryKey string, attempt int) Outcome {
	rng := rand.New(rand.NewSource(subSeed(in.p.Seed, source, queryKey, attempt)))
	// Draw in a fixed order so adding a fault kind never reshuffles the
	// decisions of the kinds before it.
	uTransient := rng.Float64()
	uTimeout := rng.Float64()
	uJitter := rng.Float64()
	uTruncate := rng.Float64()

	var out Outcome
	if in.p.LatencyJitter > 0 {
		out.Latency = time.Duration(uJitter * float64(in.p.LatencyJitter))
	}

	in.mu.Lock()
	defer in.mu.Unlock()
	ord := in.st.Decisions
	in.st.Decisions++

	flapDown := false
	if in.p.FlapDown > 0 {
		period := in.p.FlapUp + in.p.FlapDown
		flapDown = ord%period >= in.p.FlapUp
	}
	switch {
	case flapDown:
		out.Err = fmt.Errorf("%w (source %s, attempt %d, flap down)", ErrTransient, source, attempt)
		in.st.FlapFailures++
	case attempt <= in.p.FailFirstAttempts:
		out.Err = fmt.Errorf("%w (source %s, attempt %d, forced)", ErrTransient, source, attempt)
	case uTransient < in.p.TransientRate:
		out.Err = fmt.Errorf("%w (source %s, attempt %d)", ErrTransient, source, attempt)
	case uTimeout < in.p.TimeoutRate:
		out.Err = fmt.Errorf("%w (source %s, attempt %d)", ErrTimeout, source, attempt)
	case uTruncate < in.p.TruncateRate:
		out.TruncateTo = in.p.TruncateTo
	}

	switch {
	case errors.Is(out.Err, ErrTransient):
		in.st.Transients++
	case errors.Is(out.Err, ErrTimeout):
		in.st.Timeouts++
	case out.TruncateTo > 0:
		in.st.Truncations++
	}
	return out
}

// subSeed hashes the decision coordinates into an rng seed.
func subSeed(seed int64, source, queryKey string, attempt int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(source))
	h.Write([]byte{0x1f})
	h.Write([]byte(queryKey))
	h.Write([]byte{0x1f})
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(attempt) >> (8 * i))
	}
	h.Write(buf[:])
	return int64(h.Sum64())
}

// attemptKey carries the retry attempt number through a context.
type attemptKey struct{}

// WithAttempt tags ctx with a 1-based retry attempt number. The source
// reads it to key fault decisions and count retries.
func WithAttempt(ctx context.Context, attempt int) context.Context {
	return context.WithValue(ctx, attemptKey{}, attempt)
}

// Attempt extracts the attempt number from ctx, defaulting to 1.
func Attempt(ctx context.Context) int {
	if n, ok := ctx.Value(attemptKey{}).(int); ok && n > 0 {
		return n
	}
	return 1
}

// hedgeKey marks an attempt as a hedge (the second leg of a raced pair).
type hedgeKey struct{}

// WithHedge tags ctx as a hedged attempt. The source accounts it under
// Stats.Hedged rather than Retries, so source-load numbers distinguish
// "asked again because it failed" from "asked twice to cut tail latency".
func WithHedge(ctx context.Context) context.Context {
	return context.WithValue(ctx, hedgeKey{}, true)
}

// IsHedge reports whether ctx marks a hedged attempt.
func IsHedge(ctx context.Context) bool {
	b, _ := ctx.Value(hedgeKey{}).(bool)
	return b
}
