package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestDecideDeterministic verifies the core contract: Decide is a pure
// function of (seed, source, queryKey, attempt).
func TestDecideDeterministic(t *testing.T) {
	p := Profile{Seed: 7, TransientRate: 0.3, TimeoutRate: 0.1,
		LatencyJitter: 5 * time.Millisecond, TruncateRate: 0.2, TruncateTo: 3}
	a, b := New(p), New(p)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("q-%d", i)
		for attempt := 1; attempt <= 3; attempt++ {
			oa := a.Decide("cars", key, attempt)
			ob := b.Decide("cars", key, attempt)
			if (oa.Err == nil) != (ob.Err == nil) ||
				oa.Latency != ob.Latency || oa.TruncateTo != ob.TruncateTo {
				t.Fatalf("decision for (%s, %d) differs: %+v vs %+v", key, attempt, oa, ob)
			}
			if oa.Err != nil && oa.Err.Error() != ob.Err.Error() {
				t.Fatalf("error text differs: %v vs %v", oa.Err, ob.Err)
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestDecideVariesByCoordinates confirms different sources, keys, attempts
// and seeds draw independent outcomes (no accidental seed collapse).
func TestDecideVariesByCoordinates(t *testing.T) {
	p := Profile{Seed: 1, TransientRate: 0.5}
	in := New(p)
	vary := func(f func(i int) Outcome) bool {
		first := f(0)
		for i := 1; i < 64; i++ {
			if (f(i).Err == nil) != (first.Err == nil) {
				return true
			}
		}
		return false
	}
	if !vary(func(i int) Outcome { return in.Decide("cars", fmt.Sprintf("q%d", i), 1) }) {
		t.Error("outcome should vary across query keys")
	}
	if !vary(func(i int) Outcome { return in.Decide(fmt.Sprintf("s%d", i), "q", 1) }) {
		t.Error("outcome should vary across sources")
	}
	if !vary(func(i int) Outcome { return in.Decide("cars", "q", i+1) }) {
		t.Error("outcome should vary across attempts")
	}
}

// TestDecideRates checks the injected fault mix over many keys roughly
// matches the profile rates (deterministically — the seed is fixed).
func TestDecideRates(t *testing.T) {
	in := New(Profile{Seed: 42, TransientRate: 0.3, TimeoutRate: 0.1})
	n := 2000
	for i := 0; i < n; i++ {
		in.Decide("cars", fmt.Sprintf("q-%d", i), 1)
	}
	st := in.Stats()
	if st.Decisions != n {
		t.Fatalf("decisions = %d, want %d", st.Decisions, n)
	}
	// Transients drawn at 0.3; timeouts only fire when the transient draw
	// missed, so their effective rate is ~0.1 of the remainder.
	if st.Transients < 500 || st.Transients > 700 {
		t.Errorf("transients = %d, want ~600 of %d", st.Transients, n)
	}
	if st.Timeouts < 100 || st.Timeouts > 200 {
		t.Errorf("timeouts = %d, want ~140 of %d", st.Timeouts, n)
	}
}

// TestFailFirstAttempts verifies the deterministic retry-exercise knob.
func TestFailFirstAttempts(t *testing.T) {
	in := New(Profile{Seed: 3, FailFirstAttempts: 2})
	for attempt := 1; attempt <= 2; attempt++ {
		if out := in.Decide("cars", "q", attempt); !errors.Is(out.Err, ErrTransient) {
			t.Fatalf("attempt %d should fail transiently, got %v", attempt, out.Err)
		}
	}
	if out := in.Decide("cars", "q", 3); out.Err != nil {
		t.Fatalf("attempt 3 should succeed, got %v", out.Err)
	}
}

// TestTruncation verifies truncation outcomes carry the profile's row cap,
// with the cap clamped to at least 1.
func TestTruncation(t *testing.T) {
	in := New(Profile{Seed: 5, TruncateRate: 1})
	out := in.Decide("cars", "q", 1)
	if out.Err != nil || out.TruncateTo != 1 {
		t.Fatalf("expected truncation to clamped cap 1, got %+v", out)
	}
	in = New(Profile{Seed: 5, TruncateRate: 1, TruncateTo: 7})
	if out := in.Decide("cars", "q", 1); out.TruncateTo != 7 {
		t.Fatalf("TruncateTo = %d, want 7", out.TruncateTo)
	}
}

// TestRetryable classifies errors for the mediator's retry loop.
func TestRetryable(t *testing.T) {
	if !Retryable(ErrTransient) || !Retryable(ErrTimeout) || !Retryable(context.DeadlineExceeded) {
		t.Error("transient/timeout/deadline errors must be retryable")
	}
	if !Retryable(fmt.Errorf("wrapped: %w", ErrTransient)) {
		t.Error("wrapped transient must be retryable")
	}
	if Retryable(nil) || Retryable(errors.New("capability refusal")) {
		t.Error("nil and arbitrary errors must not be retryable")
	}
}

// TestAttemptContext round-trips the attempt tag.
func TestAttemptContext(t *testing.T) {
	if got := Attempt(context.Background()); got != 1 {
		t.Fatalf("default attempt = %d, want 1", got)
	}
	ctx := WithAttempt(context.Background(), 4)
	if got := Attempt(ctx); got != 4 {
		t.Fatalf("attempt = %d, want 4", got)
	}
}

// TestProfileEnabled exercises the zero-profile gate.
func TestProfileEnabled(t *testing.T) {
	if (Profile{}).Enabled() {
		t.Error("zero profile must be disabled")
	}
	for _, p := range []Profile{
		{TransientRate: 0.1}, {TimeoutRate: 0.1}, {LatencyJitter: time.Millisecond},
		{TruncateRate: 0.1}, {FailFirstAttempts: 1},
	} {
		if !p.Enabled() {
			t.Errorf("profile %+v should be enabled", p)
		}
	}
}

// TestResetStats zeroes the accounting.
func TestResetStats(t *testing.T) {
	in := New(Profile{Seed: 1, TransientRate: 1})
	in.Decide("cars", "q", 1)
	if in.Stats().Decisions != 1 {
		t.Fatal("expected one decision")
	}
	in.ResetStats()
	if in.Stats() != (Stats{}) {
		t.Fatalf("stats after reset = %+v", in.Stats())
	}
}

// TestFlapSchedule verifies the scripted up/down windows: FlapUp attempts
// succeed, FlapDown attempts fail with ErrTransient, repeating, keyed by
// the injector's attempt ordinal.
func TestFlapSchedule(t *testing.T) {
	in := New(Profile{FlapUp: 3, FlapDown: 2})
	var pattern []bool
	for i := 0; i < 12; i++ {
		out := in.Decide("cars", fmt.Sprintf("q-%d", i), 1)
		pattern = append(pattern, out.Err != nil)
		if out.Err != nil && !errors.Is(out.Err, ErrTransient) {
			t.Fatalf("flap failure %d is %v, want ErrTransient", i, out.Err)
		}
	}
	want := []bool{false, false, false, true, true,
		false, false, false, true, true, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("flap pattern = %v, want %v", pattern, want)
		}
	}
	st := in.Stats()
	if st.FlapFailures != 4 || st.Transients != 4 {
		t.Fatalf("stats = %+v, want 4 flap failures counted as transients", st)
	}
}

// TestFlapScheduleDeterministic replays the same schedule on two injectors.
func TestFlapScheduleDeterministic(t *testing.T) {
	p := Profile{Seed: 9, FlapUp: 2, FlapDown: 3, TransientRate: 0.2}
	a, b := New(p), New(p)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("q-%d", i)
		oa, ob := a.Decide("s", key, 1), b.Decide("s", key, 1)
		if (oa.Err == nil) != (ob.Err == nil) {
			t.Fatalf("attempt %d diverged: %v vs %v", i, oa.Err, ob.Err)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestFlapEnabled confirms a flap-only profile counts as enabled.
func TestFlapEnabled(t *testing.T) {
	if !(Profile{FlapUp: 1, FlapDown: 1}).Enabled() {
		t.Fatal("flap-only profile should be Enabled")
	}
	if (Profile{FlapUp: 5}).Enabled() {
		t.Fatal("FlapUp without FlapDown must not enable injection")
	}
}

// TestHedgeContext round-trips the hedge tag.
func TestHedgeContext(t *testing.T) {
	ctx := context.Background()
	if IsHedge(ctx) {
		t.Fatal("plain context must not read as hedged")
	}
	if !IsHedge(WithHedge(ctx)) {
		t.Fatal("WithHedge tag lost")
	}
	// The hedge tag must not disturb the attempt number.
	ctx = WithHedge(WithAttempt(ctx, 2))
	if Attempt(ctx) != 2 || !IsHedge(ctx) {
		t.Fatal("hedge tag and attempt number must compose")
	}
}

// TestFlapBoundaryOrdinals pins the exact ordinals the flap window flips
// on: the first down ordinal is FlapUp itself, the last is period-1, and
// the cycle wraps cleanly at every period multiple.
func TestFlapBoundaryOrdinals(t *testing.T) {
	up, down := 3, 2
	in := New(Profile{FlapUp: up, FlapDown: down})
	period := up + down
	for ord := 0; ord < 4*period; ord++ {
		out := in.Decide("cars", "q", 1)
		wantDown := ord%period >= up
		if (out.Err != nil) != wantDown {
			t.Fatalf("ordinal %d: down=%v, want %v", ord, out.Err != nil, wantDown)
		}
		switch ord % period {
		case up:
			if out.Err == nil {
				t.Fatalf("ordinal %d is the first down slot of its cycle and served", ord)
			}
		case period - 1:
			if out.Err == nil {
				t.Fatalf("ordinal %d is the last down slot of its cycle and served", ord)
			}
		case 0:
			if out.Err != nil {
				t.Fatalf("ordinal %d starts a cycle and must serve", ord)
			}
		}
	}
}

// TestFlapAlwaysDown: FlapUp 0 means no up window at all — every attempt
// fails on schedule.
func TestFlapAlwaysDown(t *testing.T) {
	in := New(Profile{FlapUp: 0, FlapDown: 4})
	for i := 0; i < 10; i++ {
		if out := in.Decide("cars", "q", 1); out.Err == nil {
			t.Fatalf("attempt %d served under FlapUp=0", i)
		}
	}
	if st := in.Stats(); st.FlapFailures != 10 {
		t.Fatalf("FlapFailures = %d, want 10", st.FlapFailures)
	}
}

// TestFlapAlternating: the tightest schedule (1 up, 1 down) flips on every
// single ordinal.
func TestFlapAlternating(t *testing.T) {
	in := New(Profile{FlapUp: 1, FlapDown: 1})
	for i := 0; i < 12; i++ {
		out := in.Decide("cars", "q", 1)
		if wantDown := i%2 == 1; (out.Err != nil) != wantDown {
			t.Fatalf("ordinal %d: down=%v, want %v", i, out.Err != nil, wantDown)
		}
	}
}

// TestFlapResetStatsRewindsSchedule: the ordinal is the Decisions counter,
// so ResetStats rewinds the flap position to the start of an up window.
func TestFlapResetStatsRewindsSchedule(t *testing.T) {
	in := New(Profile{FlapUp: 2, FlapDown: 2})
	// Advance into a down window.
	for i := 0; i < 3; i++ {
		in.Decide("cars", "q", 1)
	}
	if out := in.Decide("cars", "q", 1); out.Err == nil {
		t.Fatal("ordinal 3 should be down")
	}
	in.ResetStats()
	if out := in.Decide("cars", "q", 1); out.Err != nil {
		t.Fatalf("after ResetStats the schedule must restart up: %v", out.Err)
	}
}
