package leakcheck

import (
	"strings"
	"testing"
	"time"
)

const sampleDump = `goroutine 1 [running]:
main.main()
	/src/main.go:10 +0x1c

goroutine 18 [chan receive, 3 minutes]:
qpiad/internal/loadgen.(*pool).worker(0xc000102000)
	/src/loadgen/runner.go:88 +0x65
created by qpiad/internal/loadgen.Run in goroutine 1
	/src/loadgen/runner.go:40 +0x1a4

goroutine 33 [IO wait]:
net/http.(*persistConn).readLoop(0xc0001b2000)
	/usr/local/go/src/net/http/transport.go:2218 +0xda
created by net/http.(*Transport).dialConn in goroutine 18
	/usr/local/go/src/net/http/transport.go:1798 +0x152f
`

func TestParse(t *testing.T) {
	gs := Parse(sampleDump)
	if len(gs) != 3 {
		t.Fatalf("parsed %d goroutines, want 3", len(gs))
	}
	if gs[0].ID != 1 || gs[0].State != "running" {
		t.Errorf("g0 = %+v", gs[0])
	}
	if gs[1].ID != 18 || gs[1].State != "chan receive" {
		t.Errorf("g1 = %+v (state must drop the duration suffix)", gs[1])
	}
	if got := gs[1].FirstFunction(); got != "qpiad/internal/loadgen.(*pool).worker" {
		t.Errorf("FirstFunction = %q", got)
	}
	if got := gs[1].CreatedBy(); got != "qpiad/internal/loadgen.Run" {
		t.Errorf("CreatedBy = %q (must drop the 'in goroutine' trailer)", got)
	}
	if got := gs[0].CreatedBy(); got != "" {
		t.Errorf("main goroutine CreatedBy = %q, want empty", got)
	}
	if gs[2].ID != 33 || gs[2].CreatedBy() != "net/http.(*Transport).dialConn" {
		t.Errorf("g2 = %+v, created by %q", gs[2], gs[2].CreatedBy())
	}
}

func TestCheckDetectsLeak(t *testing.T) {
	snap := Take()
	stop := make(chan struct{})
	defer close(stop)
	started := make(chan struct{})
	go func() { // the deliberate leak
		close(started)
		<-stop
	}()
	<-started
	leaks := snap.Check(WithRetries(2), WithBackoff(time.Millisecond))
	if len(leaks) != 1 {
		t.Fatalf("leaks = %v, want exactly the blocked goroutine", leaks)
	}
	if !strings.Contains(leaks[0].String(), "leakcheck") {
		t.Errorf("leak report should name this package's test func, got %q", leaks[0])
	}
}

func TestCheckCleanAfterGoroutineExits(t *testing.T) {
	snap := Take()
	done := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(done)
	}()
	// The goroutine is likely still alive on the first dump; retries must
	// absorb the unwind window.
	if leaks := snap.Check(WithRetries(100), WithBackoff(2*time.Millisecond)); len(leaks) != 0 {
		t.Errorf("transient goroutine reported as leak: %v", leaks)
	}
	<-done
}

func TestIgnoreCreatedBy(t *testing.T) {
	snap := Take()
	stop := make(chan struct{})
	defer close(stop)
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop
	}()
	<-started
	var sleeps int
	leaks := snap.Check(
		IgnoreCreatedBy("leakcheck.TestIgnoreCreatedBy"),
		WithRetries(50),
		withSleeper(func(time.Duration) { sleeps++ }),
	)
	if len(leaks) != 0 {
		t.Errorf("allowlisted goroutine reported as leak: %v", leaks)
	}
	if sleeps != 0 {
		t.Errorf("clean first pass should not retry, slept %d times", sleeps)
	}
}

func TestCheckRetriesBeforeReporting(t *testing.T) {
	snap := Take()
	stop := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop
	}()
	<-started
	var sleeps int
	leaks := snap.Check(WithRetries(200), withSleeper(func(time.Duration) {
		sleeps++
		if sleeps == 2 {
			close(stop) // goroutine exits mid-retry
		}
		time.Sleep(time.Millisecond) // let it actually unwind
	}))
	if len(leaks) != 0 {
		t.Errorf("goroutine that exited during retries reported as leak: %v", leaks)
	}
	if sleeps < 2 {
		t.Errorf("expected at least 2 retry sleeps, got %d", sleeps)
	}
}
