// Package leakcheck detects goroutine leaks by snapshot/diff over the
// runtime's full stack dump — a stdlib-only take on the goleak pattern.
//
// The chaos harness (internal/chaos) wraps every scenario in a
// Snapshot/Check pair: goroutines alive at Check that were not alive at
// Snapshot, and that do not match the allowlist of known-benign creators,
// are leaks. Because goroutines legitimately take a moment to unwind
// (HTTP keep-alive conns, timer callbacks, worker pools draining), Check
// retries with a short backoff before declaring a leak.
//
// Identity is the goroutine id the runtime prints in "goroutine N [state]"
// headers. Ids are never reused within a process run, so a goroutine
// present in the "after" dump but absent from the "before" dump was
// created in between — the only candidates for a leak.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Goroutine is one parsed entry from a full runtime stack dump.
type Goroutine struct {
	// ID is the runtime's goroutine id from the dump header.
	ID int64
	// State is the scheduler state in the header, e.g. "running",
	// "chan receive", "IO wait", "select".
	State string
	// Stack is the raw stack text below the header, newline-separated
	// function/position pairs.
	Stack string
}

// FirstFunction returns the innermost function on the stack — the frame
// the goroutine is currently executing — or "" for an empty stack.
func (g Goroutine) FirstFunction() string {
	for _, line := range strings.Split(g.Stack, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "created by ") {
			continue
		}
		// Function lines look like "net/http.(*conn).serve(0x...)"; the
		// following line is the file:line position (starts with a path).
		if strings.HasPrefix(line, "/") || strings.HasPrefix(line, "\t") {
			continue
		}
		if i := strings.LastIndex(line, "("); i > 0 {
			return line[:i]
		}
		return line
	}
	return ""
}

// CreatedBy returns the function named in the "created by" trailer, or ""
// for main/runtime-spawned goroutines without one.
func (g Goroutine) CreatedBy() string {
	for _, line := range strings.Split(g.Stack, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "created by "); ok {
			// Trailer shape: "created by pkg.fn in goroutine 12".
			if i := strings.Index(rest, " in goroutine"); i > 0 {
				rest = rest[:i]
			}
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// Snapshot captures the set of currently-live goroutines.
type Snapshot struct {
	ids map[int64]struct{}
}

// Take captures a snapshot of every live goroutine.
func Take() *Snapshot {
	s := &Snapshot{ids: make(map[int64]struct{})}
	for _, g := range dump() {
		s.ids[g.ID] = struct{}{}
	}
	return s
}

// Option adjusts a leak check.
type Option func(*config)

type config struct {
	retries  int
	backoff  time.Duration
	allowed  []string
	sleeper  func(time.Duration)
	maxDumps int
}

// WithRetries sets how many times Check re-dumps before reporting a leak
// (default 20). Each retry waits the backoff set by WithBackoff.
func WithRetries(n int) Option { return func(c *config) { c.retries = n } }

// WithBackoff sets the wait between retries (default 10ms).
func WithBackoff(d time.Duration) Option { return func(c *config) { c.backoff = d } }

// IgnoreCreatedBy allowlists goroutines whose "created by" function (or
// current function, for runtime-spawned ones) contains the given
// substring. Use for known-benign background machinery, e.g.
// "net/http.(*Server).Serve" keep-alive readers in tests that hold a
// client open deliberately.
func IgnoreCreatedBy(substr string) Option {
	return func(c *config) { c.allowed = append(c.allowed, substr) }
}

// withSleeper replaces the retry sleeper (tests).
func withSleeper(f func(time.Duration)) Option {
	return func(c *config) { c.sleeper = f }
}

// Leak describes one goroutine alive at Check time that was not alive at
// Snapshot time and matched no allowlist entry.
type Leak struct {
	Goroutine Goroutine
	// CreatedBy is the spawning function, pre-extracted for reports.
	CreatedBy string
}

func (l Leak) String() string {
	created := l.CreatedBy
	if created == "" {
		created = "(no creator recorded)"
	}
	return fmt.Sprintf("goroutine %d [%s] in %s, created by %s",
		l.Goroutine.ID, l.Goroutine.State, l.Goroutine.FirstFunction(), created)
}

// Check diffs the current goroutines against the snapshot. New goroutines
// that persist through every retry and match no allowlist entry are
// returned as leaks; an empty slice means clean. Callers should close
// idle HTTP client connections first — keep-alive readers park for their
// idle timeout otherwise.
func (s *Snapshot) Check(opts ...Option) []Leak {
	cfg := config{retries: 20, backoff: 10 * time.Millisecond, sleeper: time.Sleep}
	for _, o := range opts {
		o(&cfg)
	}
	var fresh []Goroutine
	for attempt := 0; ; attempt++ {
		fresh = fresh[:0]
		for _, g := range dump() {
			if _, old := s.ids[g.ID]; old {
				continue
			}
			if g.State == "running" && strings.Contains(g.Stack, "leakcheck.dump") {
				continue // the dumping goroutine itself
			}
			if cfg.allowedMatch(g) {
				continue
			}
			fresh = append(fresh, g)
		}
		if len(fresh) == 0 || attempt >= cfg.retries {
			break
		}
		cfg.sleeper(cfg.backoff)
	}
	leaks := make([]Leak, 0, len(fresh))
	for _, g := range fresh {
		leaks = append(leaks, Leak{Goroutine: g, CreatedBy: g.CreatedBy()})
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].Goroutine.ID < leaks[j].Goroutine.ID })
	return leaks
}

func (c *config) allowedMatch(g Goroutine) bool {
	created := g.CreatedBy()
	if created == "" {
		created = g.FirstFunction()
	}
	for _, substr := range c.allowed {
		if strings.Contains(created, substr) {
			return true
		}
	}
	return false
}

// dump parses runtime.Stack(buf, true) into goroutine records. The buffer
// grows until the dump fits (runtime.Stack truncates silently otherwise).
func dump() []Goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	return Parse(string(buf))
}

// Parse splits a full stack dump into goroutine records. Exposed so tests
// can exercise the parser on fixed dumps.
func Parse(dump string) []Goroutine {
	var out []Goroutine
	// Records are separated by blank lines; each starts with a
	// "goroutine N [state...]:" header.
	for _, block := range strings.Split(dump, "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		header, stack, _ := strings.Cut(block, "\n")
		var id int64
		rest, ok := strings.CutPrefix(header, "goroutine ")
		if !ok {
			continue
		}
		idStr, rest, ok := strings.Cut(rest, " ")
		if !ok {
			continue
		}
		if _, err := fmt.Sscanf(idStr, "%d", &id); err != nil {
			continue
		}
		state := strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(rest), "["), "]:")
		// States can carry a duration: "chan receive, 5 minutes".
		if i := strings.Index(state, ","); i > 0 {
			state = state[:i]
		}
		out = append(out, Goroutine{ID: id, State: state, Stack: stack})
	}
	return out
}
