package afd

import (
	"math/rand"
	"reflect"
	"testing"

	"qpiad/internal/relation"
)

// wideRandomRel builds a wide relation with mixed exact, approximate and absent
// dependencies so multi-attribute TANE levels are non-trivial.
func wideRandomRel(n int, seed int64) *relation.Relation {
	s := relation.MustSchema(
		relation.Attribute{Name: "a", Kind: relation.KindString},
		relation.Attribute{Name: "b", Kind: relation.KindString},
		relation.Attribute{Name: "c", Kind: relation.KindString},
		relation.Attribute{Name: "d", Kind: relation.KindInt},
		relation.Attribute{Name: "e", Kind: relation.KindInt},
	)
	r := relation.New("rand", s)
	rng := rand.New(rand.NewSource(seed))
	letters := []string{"x", "y", "z", "w"}
	for i := 0; i < n; i++ {
		a := letters[rng.Intn(len(letters))]
		b := a + letters[rng.Intn(2)] // a narrows b: {a,b} often determines
		c := letters[rng.Intn(len(letters))]
		d := int64(rng.Intn(5))
		e := d
		if rng.Float64() < 0.15 { // d ~> e at ~0.85
			e = int64(rng.Intn(5))
		}
		r.MustInsert(relation.Tuple{
			relation.String(a), relation.String(b), relation.String(c),
			relation.Int(d), relation.Int(e),
		})
	}
	return r
}

// TestMineParallelEquivalence proves level-parallel scoring returns the
// exact Result sequential mining does — AFD order, confidences, supports,
// pruned keys — across worker counts and configurations.
func TestMineParallelEquivalence(t *testing.T) {
	rel := wideRandomRel(800, 11)
	for _, cfg := range []Config{
		{MinSupport: 2},
		{MinSupport: 5, MaxDetermining: 2},
		{MinConfidence: 0.8, MinSupport: 3},
	} {
		seqCfg := cfg
		seqCfg.Workers = 1
		seq := Mine(rel, seqCfg)
		for _, workers := range []int{2, 4, 8} {
			parCfg := cfg
			parCfg.Workers = workers
			par := Mine(rel, parCfg)
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("cfg %+v workers=%d: parallel result differs from sequential\nseq: %+v\npar: %+v",
					cfg, workers, seq, par)
			}
		}
	}
}
