package afd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qpiad/internal/relation"
)

func randomRel(seed int64, n int) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	s := relation.MustSchema(
		relation.Attribute{Name: "a", Kind: relation.KindInt},
		relation.Attribute{Name: "b", Kind: relation.KindInt},
		relation.Attribute{Name: "c", Kind: relation.KindInt},
	)
	r := relation.New("rand", s)
	for i := 0; i < n; i++ {
		mk := func(dom int) relation.Value {
			if rng.Intn(12) == 0 {
				return relation.Null()
			}
			return relation.Int(int64(rng.Intn(dom)))
		}
		r.MustInsert(relation.Tuple{mk(3), mk(3), mk(4)})
	}
	return r
}

func TestPartitionBasics(t *testing.T) {
	r := carsRel() // 10 Z4 + 10 Civic
	p := NewPartition(r, []string{"model"})
	if p.N != 20 {
		t.Errorf("N = %d", p.N)
	}
	if len(p.Classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(p.Classes))
	}
	if p.Rank() != 20 {
		t.Errorf("Rank = %d", p.Rank())
	}
	if p.NumClasses() != 2 {
		t.Errorf("NumClasses = %d", p.NumClasses())
	}
}

func TestPartitionStripsSingletons(t *testing.T) {
	s := relation.MustSchema(relation.Attribute{Name: "a", Kind: relation.KindInt})
	r := relation.New("r", s)
	for i := 0; i < 5; i++ {
		r.MustInsert(relation.Tuple{relation.Int(int64(i))})
	}
	r.MustInsert(relation.Tuple{relation.Int(0)}) // one duplicate
	p := NewPartition(r, []string{"a"})
	if len(p.Classes) != 1 || len(p.Classes[0]) != 2 {
		t.Errorf("stripped partition = %v", p.Classes)
	}
	if p.NumClasses() != 5 {
		t.Errorf("NumClasses = %d, want 5", p.NumClasses())
	}
}

func TestPartitionExcludesNulls(t *testing.T) {
	s := relation.MustSchema(relation.Attribute{Name: "a", Kind: relation.KindInt})
	r := relation.New("r", s)
	r.MustInsert(relation.Tuple{relation.Int(1)})
	r.MustInsert(relation.Tuple{relation.Null()})
	r.MustInsert(relation.Tuple{relation.Int(1)})
	p := NewPartition(r, []string{"a"})
	if p.N != 2 {
		t.Errorf("null tuple should be excluded: N = %d", p.N)
	}
}

// Property: Π_{X∪Y} (computed directly) refines Π_X, and the partition
// product agrees with the direct computation.
func TestPartitionProductAndRefinement(t *testing.T) {
	f := func(seed int64) bool {
		r := randomRel(seed, 60)
		pa := NewPartition(r, []string{"a"})
		pb := NewPartition(r, []string{"b"})
		pab := NewPartition(r, []string{"a", "b"})
		if !pab.Refines(pa) || !pab.Refines(pb) {
			return false
		}
		prod := pa.Product(pb)
		if len(prod.Classes) != len(pab.Classes) {
			return false
		}
		for i := range prod.Classes {
			if len(prod.Classes[i]) != len(pab.Classes[i]) {
				return false
			}
			for j := range prod.Classes[i] {
				if prod.Classes[i][j] != pab.Classes[i][j] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRefinesNegative(t *testing.T) {
	r := randomRel(3, 60)
	pa := NewPartition(r, []string{"a"})
	pc := NewPartition(r, []string{"c"})
	pab := NewPartition(r, []string{"a", "b"})
	// Π_a does not (in general) refine Π_{ab}; find a case where it doesn't.
	if pa.Refines(pab) && pc.Refines(pab) {
		t.Skip("degenerate random relation; refinement accidentally holds")
	}
}

func TestG3UnknownAttr(t *testing.T) {
	r := carsRel()
	if g, n := G3(r, []string{"nope"}, "make"); g != 0 || n != 0 {
		t.Error("unknown determining attribute should return 0,0")
	}
	if g, n := G3(r, []string{"model"}, "nope"); g != 0 || n != 0 {
		t.Error("unknown dependent should return 0,0")
	}
}

func TestEmptyPartitionProduct(t *testing.T) {
	var a, b Partition
	prod := a.Product(b)
	if len(prod.Classes) != 0 {
		t.Error("empty product should have no classes")
	}
}
