// Package afd mines Approximate Functional Dependencies (AFDs) and
// approximate keys (AKeys) from a relation sample, following the TANE
// partition-refinement approach of Huhtala et al. (ICDE 1998) with the
// g3 error measure of Kivinen & Mannila (ICDT 1992), as used by QPIAD
// (Section 5.1 of the paper).
//
// An AFD X ⤳ A holds on all but a small fraction of tuples; its confidence
// is conf = 1 − g3, where g3 is the minimum fraction of tuples that must be
// removed for X → A to become an exact functional dependency. An AKey is an
// attribute set that is a key on all but a small fraction of tuples.
//
// QPIAD prunes AFDs whose determining set is (a superset of) a high
// confidence AKey: such determining sets almost uniquely identify tuples,
// so they carry no generalizable signal for predicting missing values
// (the paper's VIN example). The pruning rule keeps an AFD only if
// conf(AFD) − conf(AKey(dtrSet)) ≥ δ.
package afd

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"qpiad/internal/relation"
)

// AFD is a mined approximate functional dependency dtrSet ⤳ Dependent.
type AFD struct {
	// Determining is the determining set dtrSet(Dependent), in schema order.
	Determining []string
	// Dependent is the attribute whose value the determining set predicts.
	Dependent string
	// Confidence is 1 − g3 ∈ [0, 1].
	Confidence float64
	// AKeyConfidence is the approximate-key confidence of the determining
	// set (fraction of tuples uniquely identified by their dtrSet value).
	AKeyConfidence float64
	// Support is the number of sample tuples (non-null on dtrSet ∪ {A})
	// the confidence was computed over.
	Support int
}

// String renders the AFD as "{X1,X2} ~> A (conf=0.93)".
func (a AFD) String() string {
	return fmt.Sprintf("{%s} ~> %s (conf=%.3f)", strings.Join(a.Determining, ","), a.Dependent, a.Confidence)
}

// AKey is a mined approximate key.
type AKey struct {
	Attrs      []string
	Confidence float64
}

// String renders the AKey.
func (k AKey) String() string {
	return fmt.Sprintf("AKey{%s} (conf=%.3f)", strings.Join(k.Attrs, ","), k.Confidence)
}

// Config controls mining.
type Config struct {
	// MinConfidence is β: AFDs below this confidence are discarded.
	// Default 0.5 (low, so the classifier layer can apply its own cutoff).
	MinConfidence float64
	// MaxDetermining bounds the determining-set size (lattice depth).
	// Default 3.
	MaxDetermining int
	// PruneDelta is δ: an AFD is pruned when conf(AFD) − conf(AKey(dtrSet))
	// < δ. The paper sets δ = 0.3 experimentally. Default 0.3.
	PruneDelta float64
	// AKeyMinConfidence is the reporting threshold for the AKeys list.
	// Default 0.95.
	AKeyMinConfidence float64
	// MinSupport is the minimum number of usable (non-null) tuples required
	// to score a candidate. Default 10.
	MinSupport int
	// KeepNonMinimal, when true, retains AFDs whose determining set is a
	// strict superset of an already-accepted AFD for the same dependent.
	// TANE outputs minimal dependencies; the default (false) matches that.
	KeepNonMinimal bool
	// Workers bounds the goroutines scoring candidates within one lattice
	// level. 0 means GOMAXPROCS; 1 forces sequential scoring. Results are
	// identical for any value: same-level candidates are independent (a set
	// can only be a strict subset of a *larger* set, so minimality checks
	// depend only on previous levels) and the merge runs in level order.
	// Excluded from JSON so persisted knowledge files don't depend on the
	// mining machine's core count.
	Workers int `json:"-"`
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.MinConfidence == 0 {
		c.MinConfidence = 0.5
	}
	if c.MaxDetermining == 0 {
		c.MaxDetermining = 3
	}
	if c.PruneDelta == 0 {
		c.PruneDelta = 0.3
	}
	if c.AKeyMinConfidence == 0 {
		c.AKeyMinConfidence = 0.95
	}
	if c.MinSupport == 0 {
		c.MinSupport = 10
	}
	return c
}

// Result holds the outcome of mining one relation.
type Result struct {
	// Relation is the name of the mined relation.
	Relation string
	// N is the number of tuples mined over.
	N int
	// AFDs are the retained dependencies, grouped by dependent attribute
	// and sorted by descending confidence within each group.
	AFDs []AFD
	// Pruned are AFDs that met the confidence threshold but were removed by
	// the AKey pruning rule; retained for introspection and explanation.
	Pruned []AFD
	// AKeys are minimal approximate keys above AKeyMinConfidence.
	AKeys []AKey
}

// ForDependent returns the retained AFDs with the given dependent
// attribute, highest confidence first.
func (r *Result) ForDependent(dep string) []AFD {
	var out []AFD
	for _, a := range r.AFDs {
		if a.Dependent == dep {
			out = append(out, a)
		}
	}
	return out
}

// Best returns the highest-confidence retained AFD for the dependent
// attribute (the paper's "highest confidence AFD" used for dtrSet(Am)).
func (r *Result) Best(dep string) (AFD, bool) {
	best := AFD{Confidence: -1}
	for _, a := range r.AFDs {
		if a.Dependent == dep && a.Confidence > best.Confidence {
			best = a
		}
	}
	return best, best.Confidence >= 0
}

// Mine runs TANE-style levelwise AFD and AKey discovery over rel.
func Mine(rel *relation.Relation, cfg Config) *Result {
	cfg = cfg.withDefaults()
	m := newMiner(rel, cfg)
	return m.run()
}

// miner holds interned columns and search state.
type miner struct {
	cfg    Config
	rel    *relation.Relation
	n      int
	nattrs int
	names  []string
	cols   [][]int32 // cols[a][t] = interned value id of attribute a in tuple t; -1 for null
	domain []int     // domain[a] = number of distinct non-null values
}

func newMiner(rel *relation.Relation, cfg Config) *miner {
	s := rel.Schema
	m := &miner{
		cfg:    cfg,
		rel:    rel,
		n:      rel.Len(),
		nattrs: s.Len(),
		names:  s.Names(),
		cols:   make([][]int32, s.Len()),
		domain: make([]int, s.Len()),
	}
	for a := 0; a < s.Len(); a++ {
		ids := make([]int32, m.n)
		intern := make(map[string]int32)
		for t := 0; t < m.n; t++ {
			v := rel.Tuple(t)[a]
			if v.IsNull() {
				ids[t] = -1
				continue
			}
			k := v.Key()
			id, ok := intern[k]
			if !ok {
				id = int32(len(intern))
				intern[k] = id
			}
			ids[t] = id
		}
		m.cols[a] = ids
		m.domain[a] = len(intern)
	}
	return m
}

// attrSet is a bitmask of attribute positions (schemas are bounded at 64
// attributes, far above any dataset in the paper).
type attrSet uint64

func (s attrSet) has(a int) bool     { return s&(1<<uint(a)) != 0 }
func (s attrSet) with(a int) attrSet { return s | 1<<uint(a) }
func (s attrSet) size() int          { return bits.OnesCount64(uint64(s)) }
func (s attrSet) members() []int {
	out := make([]int, 0, s.size())
	for a := 0; s != 0; a++ {
		if s.has(a) {
			out = append(out, a)
			s &^= 1 << uint(a)
		}
	}
	return out
}
func (s attrSet) isSubsetOf(t attrSet) bool { return s&t == s }

// classify assigns each tuple an equivalence-class id under the attribute
// set X; tuples null on any attribute of X get class -1.
// It also returns the number of classes.
func (m *miner) classify(x attrSet) (classes []int32, nclasses int) {
	attrs := x.members()
	classes = make([]int32, m.n)
	intern := make(map[string]int32, m.n/4+1)
	var buf []byte
	for t := 0; t < m.n; t++ {
		buf = buf[:0]
		null := false
		for _, a := range attrs {
			id := m.cols[a][t]
			if id < 0 {
				null = true
				break
			}
			buf = append(buf,
				byte(id), byte(id>>8), byte(id>>16), byte(id>>24), 0xff)
		}
		if null {
			classes[t] = -1
			continue
		}
		k := string(buf)
		c, ok := intern[k]
		if !ok {
			c = int32(len(intern))
			intern[k] = c
		}
		classes[t] = c
	}
	return classes, len(intern)
}

// score computes, for determining set X (with classes precomputed) and
// dependent a, the g3 confidence and support. Tuples null on X or on a are
// excluded.
func (m *miner) score(classes []int32, nclasses int, a int) (conf float64, support int) {
	col := m.cols[a]
	// counts[class][valueID] -> occurrences
	type cell struct {
		class int32
		val   int32
	}
	counts := make(map[cell]int)
	classTotal := make([]int, nclasses)
	classMax := make([]int, nclasses)
	for t := 0; t < m.n; t++ {
		c := classes[t]
		if c < 0 || col[t] < 0 {
			continue
		}
		support++
		classTotal[c]++
		k := cell{c, col[t]}
		counts[k]++
		if counts[k] > classMax[c] {
			classMax[c] = counts[k]
		}
	}
	if support == 0 {
		return 0, 0
	}
	keep := 0
	for c := 0; c < nclasses; c++ {
		keep += classMax[c]
	}
	// g3 = (support - keep) / support; conf = 1 - g3.
	return float64(keep) / float64(support), support
}

// akeyConf computes the approximate-key confidence of X: the fraction of
// tuples (non-null on X) that would remain after keeping one tuple per
// equivalence class, i.e. #classes / #tuples.
func akeyConf(classes []int32, nclasses int) (float64, int) {
	total := 0
	for _, c := range classes {
		if c >= 0 {
			total++
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(nclasses) / float64(total), total
}

func (m *miner) run() *Result {
	res := &Result{Relation: m.rel.Name, N: m.n}
	if m.n == 0 || m.nattrs == 0 {
		return res
	}
	// accepted[a] holds determining sets already accepted for dependent a;
	// supersets are non-minimal and skipped unless KeepNonMinimal.
	accepted := make([][]attrSet, m.nattrs)
	// akeyFound holds minimal AKeys discovered so far (for minimality of
	// the reported AKey list).
	var akeyMinimal []attrSet

	level := make([]attrSet, 0, m.nattrs)
	for a := 0; a < m.nattrs; a++ {
		level = append(level, attrSet(0).with(a))
	}
	seen := make(map[attrSet]bool)
	for _, x := range level {
		seen[x] = true
	}

	for depth := 1; depth <= m.cfg.MaxDetermining && len(level) > 0; depth++ {
		sort.Slice(level, func(i, j int) bool { return level[i] < level[j] })
		// Phase 1 (parallel): classify and score every candidate of the
		// level. Same-level sets have equal cardinality, so none is a strict
		// subset of another — minimality only depends on previous levels,
		// which are frozen here. Phase 2 (sequential, level order): AKey
		// minimality, accept/prune, candidate generation. Output is
		// byte-identical to the fully sequential loop.
		scored := m.scoreLevel(level, accepted)
		var next []attrSet
		for i, x := range level {
			kconf, ksupport := scored[i].kconf, scored[i].ksupport

			// AKey reporting (minimal only).
			if ksupport >= m.cfg.MinSupport && kconf >= m.cfg.AKeyMinConfidence {
				minimal := true
				for _, prev := range akeyMinimal {
					if prev.isSubsetOf(x) {
						minimal = false
						break
					}
				}
				if minimal {
					akeyMinimal = append(akeyMinimal, x)
					res.AKeys = append(res.AKeys, AKey{Attrs: m.attrNames(x), Confidence: kconf})
				}
			}

			for _, dc := range scored[i].deps {
				if !m.cfg.KeepNonMinimal && hasSubset(accepted[dc.a], x) {
					continue
				}
				dep := AFD{
					Determining:    m.attrNames(x),
					Dependent:      m.names[dc.a],
					Confidence:     dc.conf,
					AKeyConfidence: kconf,
					Support:        dc.support,
				}
				accepted[dc.a] = append(accepted[dc.a], x)
				// AKey pruning rule (Section 5.1): determining sets that
				// nearly key the relation generalize poorly.
				if dc.conf-kconf < m.cfg.PruneDelta {
					res.Pruned = append(res.Pruned, dep)
				} else {
					res.AFDs = append(res.AFDs, dep)
				}
			}
			// Candidate generation: extend x by attributes greater than its
			// maximum member (standard levelwise enumeration).
			if depth < m.cfg.MaxDetermining {
				maxMember := -1
				for _, a := range x.members() {
					maxMember = a
				}
				for a := maxMember + 1; a < m.nattrs; a++ {
					nx := x.with(a)
					if !seen[nx] {
						seen[nx] = true
						next = append(next, nx)
					}
				}
			}
		}
		level = next
	}

	sort.Slice(res.AFDs, func(i, j int) bool {
		if res.AFDs[i].Dependent != res.AFDs[j].Dependent {
			return res.AFDs[i].Dependent < res.AFDs[j].Dependent
		}
		return res.AFDs[i].Confidence > res.AFDs[j].Confidence
	})
	return res
}

// depCand is one dependent attribute whose score passed the support and
// confidence thresholds for a candidate determining set.
type depCand struct {
	a       int
	conf    float64
	support int
}

// levelScore is the parallel-phase output for one candidate set.
type levelScore struct {
	kconf    float64
	ksupport int
	deps     []depCand
}

// scoreLevel computes classify/akeyConf/score for every candidate in the
// level, fanning the work over cfg.Workers goroutines. accepted is read-only
// during the fan-out: each worker filters against the previous levels'
// minimality state, which is all that can subsume a same-cardinality set.
func (m *miner) scoreLevel(level []attrSet, accepted [][]attrSet) []levelScore {
	scored := make([]levelScore, len(level))
	scoreOne := func(i int) {
		x := level[i]
		classes, nclasses := m.classify(x)
		ls := levelScore{}
		ls.kconf, ls.ksupport = akeyConf(classes, nclasses)
		for a := 0; a < m.nattrs; a++ {
			if x.has(a) {
				continue
			}
			if !m.cfg.KeepNonMinimal && hasSubset(accepted[a], x) {
				continue
			}
			conf, support := m.score(classes, nclasses, a)
			if support < m.cfg.MinSupport || conf < m.cfg.MinConfidence {
				continue
			}
			ls.deps = append(ls.deps, depCand{a: a, conf: conf, support: support})
		}
		scored[i] = ls
	}

	workers := m.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(level) {
		workers = len(level)
	}
	if workers <= 1 {
		for i := range level {
			scoreOne(i)
		}
		return scored
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(level) {
					return
				}
				scoreOne(i)
			}
		}()
	}
	wg.Wait()
	return scored
}

func hasSubset(sets []attrSet, x attrSet) bool {
	for _, s := range sets {
		if s.isSubsetOf(x) {
			return true
		}
	}
	return false
}

func (m *miner) attrNames(x attrSet) []string {
	members := x.members()
	out := make([]string, len(members))
	for i, a := range members {
		out[i] = m.names[a]
	}
	return out
}
