package afd

import (
	"sort"

	"qpiad/internal/relation"
)

// Partition is an equivalence-class partition of tuple positions under an
// attribute set, in TANE's "stripped" form: singleton classes are omitted
// because they can never violate a dependency. Tuples with a null on any
// partitioning attribute are excluded entirely.
type Partition struct {
	// Classes holds the equivalence classes (each sorted ascending), only
	// those with at least two members.
	Classes [][]int
	// N is the number of tuples the partition was computed over (tuples
	// non-null on the partitioning attributes).
	N int
}

// NewPartition computes the stripped partition of rel under the named
// attributes.
func NewPartition(rel *relation.Relation, attrs []string) Partition {
	cols := make([]int, 0, len(attrs))
	for _, a := range attrs {
		if c, ok := rel.Schema.Index(a); ok {
			cols = append(cols, c)
		}
	}
	groups := make(map[string][]int)
	n := 0
	for i, t := range rel.Tuples() {
		null := false
		for _, c := range cols {
			if t[c].IsNull() {
				null = true
				break
			}
		}
		if null {
			continue
		}
		n++
		k := t.KeyOn(cols)
		groups[k] = append(groups[k], i)
	}
	p := Partition{N: n}
	for _, g := range groups {
		if len(g) >= 2 {
			sort.Ints(g)
			p.Classes = append(p.Classes, g)
		}
	}
	sort.Slice(p.Classes, func(i, j int) bool { return p.Classes[i][0] < p.Classes[j][0] })
	return p
}

// Rank returns ||Π||: the total number of tuples appearing in non-singleton
// classes.
func (p Partition) Rank() int {
	n := 0
	for _, c := range p.Classes {
		n += len(c)
	}
	return n
}

// NumClasses returns the total number of equivalence classes including the
// implicit singletons: (#stripped classes) + (N − rank).
func (p Partition) NumClasses() int {
	return len(p.Classes) + (p.N - p.Rank())
}

// Product computes the stripped partition Π_X · Π_Y = Π_{X∪Y} (TANE's
// partition product). Both partitions must have been computed over the same
// relation. Tuples absent from either operand (nulls) are absent from the
// product; the product's N is therefore a lower bound of the exact
// Π_{X∪Y} N, matching stripped-partition semantics where only co-occurring
// tuples matter.
func (p Partition) Product(q Partition) Partition {
	// classOf[t] = index of t's class in p, or -1.
	maxT := -1
	for _, c := range p.Classes {
		if len(c) > 0 && c[len(c)-1] > maxT {
			maxT = c[len(c)-1]
		}
	}
	for _, c := range q.Classes {
		if len(c) > 0 && c[len(c)-1] > maxT {
			maxT = c[len(c)-1]
		}
	}
	classOf := make([]int, maxT+1)
	for i := range classOf {
		classOf[i] = -1
	}
	for i, c := range p.Classes {
		for _, t := range c {
			classOf[t] = i
		}
	}
	type pair struct{ a, b int }
	groups := make(map[pair][]int)
	for j, c := range q.Classes {
		for _, t := range c {
			if t < len(classOf) && classOf[t] >= 0 {
				groups[pair{classOf[t], j}] = append(groups[pair{classOf[t], j}], t)
			}
		}
	}
	out := Partition{N: min(p.N, q.N)}
	for _, g := range groups {
		if len(g) >= 2 {
			sort.Ints(g)
			out.Classes = append(out.Classes, g)
		}
	}
	sort.Slice(out.Classes, func(i, j int) bool { return out.Classes[i][0] < out.Classes[j][0] })
	return out
}

// Refines reports whether every class of p is contained in some class of q
// (p is a refinement of q). Refinement is checked over the stripped classes
// of p: singleton classes refine trivially.
func (p Partition) Refines(q Partition) bool {
	classOf := make(map[int]int)
	for i, c := range q.Classes {
		for _, t := range c {
			classOf[t] = i
		}
	}
	for _, c := range p.Classes {
		want, ok := classOf[c[0]]
		for _, t := range c[1:] {
			got, ok2 := classOf[t]
			if !ok || !ok2 || got != want {
				return false
			}
		}
	}
	return true
}

// G3 computes the g3 error of the dependency X → A directly from the
// relation: the minimum fraction of tuples to remove so the dependency
// holds exactly. Tuples null on X ∪ {A} are excluded. The second result is
// the number of tuples scored.
func G3(rel *relation.Relation, determining []string, dependent string) (float64, int) {
	depCol, ok := rel.Schema.Index(dependent)
	if !ok {
		return 0, 0
	}
	cols := make([]int, 0, len(determining))
	for _, a := range determining {
		c, ok := rel.Schema.Index(a)
		if !ok {
			return 0, 0
		}
		cols = append(cols, c)
	}
	type group struct {
		total int
		count map[string]int
	}
	groups := make(map[string]*group)
	n := 0
	for _, t := range rel.Tuples() {
		if t[depCol].IsNull() {
			continue
		}
		null := false
		for _, c := range cols {
			if t[c].IsNull() {
				null = true
				break
			}
		}
		if null {
			continue
		}
		n++
		k := t.KeyOn(cols)
		g := groups[k]
		if g == nil {
			g = &group{count: make(map[string]int)}
			groups[k] = g
		}
		g.total++
		g.count[t[depCol].Key()]++
	}
	if n == 0 {
		return 0, 0
	}
	keep := 0
	for _, g := range groups {
		best := 0
		for _, c := range g.count {
			if c > best {
				best = c
			}
		}
		keep += best
	}
	return float64(n-keep) / float64(n), n
}
