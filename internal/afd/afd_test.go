package afd

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"qpiad/internal/relation"
)

// carsRel builds a relation where model -> make holds exactly and
// model ~> body_style holds at a known confidence.
func carsRel() *relation.Relation {
	s := relation.MustSchema(
		relation.Attribute{Name: "make", Kind: relation.KindString},
		relation.Attribute{Name: "model", Kind: relation.KindString},
		relation.Attribute{Name: "body_style", Kind: relation.KindString},
	)
	r := relation.New("cars", s)
	// 10 Z4s: 9 Convt, 1 Coupe => model=Z4 predicts Convt with 0.9.
	for i := 0; i < 9; i++ {
		r.MustInsert(relation.Tuple{relation.String("BMW"), relation.String("Z4"), relation.String("Convt")})
	}
	r.MustInsert(relation.Tuple{relation.String("BMW"), relation.String("Z4"), relation.String("Coupe")})
	// 10 Civics: 8 Sedan, 2 Coupe => 0.8.
	for i := 0; i < 8; i++ {
		r.MustInsert(relation.Tuple{relation.String("Honda"), relation.String("Civic"), relation.String("Sedan")})
	}
	for i := 0; i < 2; i++ {
		r.MustInsert(relation.Tuple{relation.String("Honda"), relation.String("Civic"), relation.String("Coupe")})
	}
	return r
}

func TestMineExactFD(t *testing.T) {
	res := Mine(carsRel(), Config{MinSupport: 2, MaxDetermining: 1})
	var found *AFD
	for i, a := range res.AFDs {
		if a.Dependent == "make" && len(a.Determining) == 1 && a.Determining[0] == "model" {
			found = &res.AFDs[i]
		}
	}
	if found == nil {
		t.Fatalf("model ~> make not mined; got %v (pruned %v)", res.AFDs, res.Pruned)
	}
	if found.Confidence != 1.0 {
		t.Errorf("model -> make confidence = %v, want 1.0", found.Confidence)
	}
}

func TestMineApproximateConfidence(t *testing.T) {
	res := Mine(carsRel(), Config{MinSupport: 2, MaxDetermining: 1})
	var found *AFD
	for i, a := range res.AFDs {
		if a.Dependent == "body_style" && len(a.Determining) == 1 && a.Determining[0] == "model" {
			found = &res.AFDs[i]
		}
	}
	if found == nil {
		t.Fatalf("model ~> body_style not mined; got %v", res.AFDs)
	}
	// keep = 9 + 8 = 17 of 20 => conf = 0.85.
	if math.Abs(found.Confidence-0.85) > 1e-9 {
		t.Errorf("model ~> body_style confidence = %v, want 0.85", found.Confidence)
	}
	if found.Support != 20 {
		t.Errorf("support = %d, want 20", found.Support)
	}
}

func TestBestAndForDependent(t *testing.T) {
	res := Mine(carsRel(), Config{MinSupport: 2})
	best, ok := res.Best("make")
	if !ok {
		t.Fatal("no AFD for make")
	}
	if best.Confidence != 1.0 {
		t.Errorf("best for make = %v", best)
	}
	deps := res.ForDependent("body_style")
	for i := 1; i < len(deps); i++ {
		if deps[i-1].Confidence < deps[i].Confidence {
			t.Error("ForDependent not sorted by confidence desc")
		}
	}
	if _, ok := res.Best("nonexistent"); ok {
		t.Error("Best(nonexistent) should be false")
	}
}

// TestAKeyPruning reproduces the paper's VIN example: an attribute that is
// an (approximate) key determines everything, but such AFDs are useless for
// prediction and must be pruned.
func TestAKeyPruning(t *testing.T) {
	s := relation.MustSchema(
		relation.Attribute{Name: "vin", Kind: relation.KindInt},
		relation.Attribute{Name: "model", Kind: relation.KindString},
		relation.Attribute{Name: "make", Kind: relation.KindString},
	)
	r := relation.New("cars", s)
	models := []string{"Z4", "Civic", "Camry", "A4"}
	makes := []string{"BMW", "Honda", "Toyota", "Audi"}
	for i := 0; i < 200; i++ {
		m := i % 4
		r.MustInsert(relation.Tuple{
			relation.Int(int64(i)), // unique: a true key
			relation.String(models[m]),
			relation.String(makes[m]),
		})
	}
	res := Mine(r, Config{MinSupport: 5})
	for _, a := range res.AFDs {
		for _, d := range a.Determining {
			if d == "vin" {
				t.Errorf("AFD with key in determining set survived pruning: %v", a)
			}
		}
	}
	foundPruned := false
	for _, a := range res.Pruned {
		if len(a.Determining) == 1 && a.Determining[0] == "vin" {
			foundPruned = true
		}
	}
	if !foundPruned {
		t.Error("vin ~> * should appear in Pruned")
	}
	// vin must be reported as an AKey.
	foundKey := false
	for _, k := range res.AKeys {
		if len(k.Attrs) == 1 && k.Attrs[0] == "vin" {
			foundKey = true
			if k.Confidence != 1.0 {
				t.Errorf("vin AKey confidence = %v", k.Confidence)
			}
		}
	}
	if !foundKey {
		t.Errorf("vin not reported as AKey: %v", res.AKeys)
	}
	// model ~> make must survive.
	if best, ok := res.Best("make"); !ok || best.Determining[0] != "model" {
		t.Errorf("model ~> make should survive pruning, got %v %v", best, ok)
	}
}

func TestMinimality(t *testing.T) {
	// model -> make exactly, so {model, body_style} -> make is non-minimal
	// and must not be emitted by default.
	res := Mine(carsRel(), Config{MinSupport: 2})
	for _, a := range res.AFDs {
		if a.Dependent == "make" && len(a.Determining) > 1 {
			t.Errorf("non-minimal AFD emitted: %v", a)
		}
	}
	// With KeepNonMinimal, supersets may appear.
	res2 := Mine(carsRel(), Config{MinSupport: 2, KeepNonMinimal: true})
	if len(res2.AFDs)+len(res2.Pruned) < len(res.AFDs)+len(res.Pruned) {
		t.Error("KeepNonMinimal should not shrink the result")
	}
}

func TestNullExclusion(t *testing.T) {
	s := relation.MustSchema(
		relation.Attribute{Name: "a", Kind: relation.KindString},
		relation.Attribute{Name: "b", Kind: relation.KindString},
	)
	r := relation.New("r", s)
	// 10 clean pairs supporting a->b exactly, plus nulls that would break it
	// if counted as values.
	for i := 0; i < 10; i++ {
		r.MustInsert(relation.Tuple{relation.String("x"), relation.String("y")})
	}
	r.MustInsert(relation.Tuple{relation.String("x"), relation.Null()})
	r.MustInsert(relation.Tuple{relation.Null(), relation.String("z")})
	res := Mine(r, Config{MinSupport: 2, MaxDetermining: 1, PruneDelta: 0.001})
	var found *AFD
	for i, a := range res.AFDs {
		if a.Dependent == "b" && a.Determining[0] == "a" {
			found = &res.AFDs[i]
		}
	}
	if found == nil {
		t.Fatalf("a ~> b missing: %+v", res)
	}
	if found.Confidence != 1.0 {
		t.Errorf("null tuples should be excluded; conf = %v", found.Confidence)
	}
	if found.Support != 10 {
		t.Errorf("support = %d, want 10", found.Support)
	}
}

func TestMinSupport(t *testing.T) {
	r := carsRel()
	res := Mine(r, Config{MinSupport: 1000})
	if len(res.AFDs) != 0 {
		t.Errorf("no AFD should meet support 1000, got %v", res.AFDs)
	}
}

func TestEmptyRelation(t *testing.T) {
	s := relation.MustSchema(relation.Attribute{Name: "a", Kind: relation.KindString})
	res := Mine(relation.New("e", s), Config{})
	if len(res.AFDs) != 0 || len(res.AKeys) != 0 {
		t.Error("empty relation should mine nothing")
	}
}

func TestMaxDetermining(t *testing.T) {
	res := Mine(carsRel(), Config{MinSupport: 2, MaxDetermining: 2, KeepNonMinimal: true, PruneDelta: 0.0001})
	for _, a := range append(res.AFDs, res.Pruned...) {
		if len(a.Determining) > 2 {
			t.Errorf("determining set exceeds bound: %v", a)
		}
	}
}

// TestMineMatchesDirectG3 cross-checks the levelwise miner against the
// direct G3 computation on random relations.
func TestMineMatchesDirectG3(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		s := relation.MustSchema(
			relation.Attribute{Name: "a", Kind: relation.KindInt},
			relation.Attribute{Name: "b", Kind: relation.KindInt},
			relation.Attribute{Name: "c", Kind: relation.KindInt},
		)
		r := relation.New("rand", s)
		for i := 0; i < 120; i++ {
			mk := func(dom int) relation.Value {
				if rng.Intn(10) == 0 {
					return relation.Null()
				}
				return relation.Int(int64(rng.Intn(dom)))
			}
			r.MustInsert(relation.Tuple{mk(3), mk(4), mk(2)})
		}
		res := Mine(r, Config{MinConfidence: 0.01, MinSupport: 2, PruneDelta: 1e-12, AKeyMinConfidence: 2})
		all := append(append([]AFD{}, res.AFDs...), res.Pruned...)
		for _, a := range all {
			g3, n := G3(r, a.Determining, a.Dependent)
			if n != a.Support {
				t.Fatalf("trial %d: support mismatch for %v: mine %d direct %d", trial, a, a.Support, n)
			}
			if math.Abs((1-g3)-a.Confidence) > 1e-12 {
				t.Fatalf("trial %d: confidence mismatch for %v: mine %v direct %v", trial, a, a.Confidence, 1-g3)
			}
		}
	}
}

// TestG3Antimonotone checks conf(X→A) <= conf(XZ→A): adding determining
// attributes can only reduce g3.
func TestG3Antimonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := relation.MustSchema(
		relation.Attribute{Name: "a", Kind: relation.KindInt},
		relation.Attribute{Name: "b", Kind: relation.KindInt},
		relation.Attribute{Name: "c", Kind: relation.KindInt},
	)
	r := relation.New("rand", s)
	for i := 0; i < 300; i++ {
		r.MustInsert(relation.Tuple{
			relation.Int(int64(rng.Intn(4))),
			relation.Int(int64(rng.Intn(4))),
			relation.Int(int64(rng.Intn(3))),
		})
	}
	g1, _ := G3(r, []string{"a"}, "c")
	g2, _ := G3(r, []string{"a", "b"}, "c")
	if g2 > g1+1e-12 {
		t.Errorf("g3 not anti-monotone: g3(a->c)=%v < g3(ab->c)=%v", g1, g2)
	}
}

func TestG3Bounds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := relation.MustSchema(
		relation.Attribute{Name: "a", Kind: relation.KindInt},
		relation.Attribute{Name: "b", Kind: relation.KindInt},
	)
	for trial := 0; trial < 10; trial++ {
		r := relation.New("rand", s)
		for i := 0; i < 50; i++ {
			r.MustInsert(relation.Tuple{
				relation.Int(int64(rng.Intn(5))),
				relation.Int(int64(rng.Intn(5))),
			})
		}
		g, n := G3(r, []string{"a"}, "b")
		if g < 0 || g > 1 || n != 50 {
			t.Fatalf("g3 out of bounds: %v (n=%d)", g, n)
		}
		// g3 < 1 always: keeping the majority keeps at least one per class.
		if g >= 1 {
			t.Fatalf("g3 must be < 1, got %v", g)
		}
	}
}

func TestAFDString(t *testing.T) {
	a := AFD{Determining: []string{"model"}, Dependent: "make", Confidence: 0.93}
	if a.String() != "{model} ~> make (conf=0.930)" {
		t.Errorf("String() = %q", a.String())
	}
	k := AKey{Attrs: []string{"vin"}, Confidence: 1}
	if k.String() != "AKey{vin} (conf=1.000)" {
		t.Errorf("AKey String() = %q", k.String())
	}
}

func TestLargeMineSmoke(t *testing.T) {
	// Larger randomized smoke test to exercise interning and lattice paths.
	rng := rand.New(rand.NewSource(42))
	attrs := make([]relation.Attribute, 6)
	for i := range attrs {
		attrs[i] = relation.Attribute{Name: fmt.Sprintf("a%d", i), Kind: relation.KindInt}
	}
	r := relation.New("big", relation.MustSchema(attrs...))
	for i := 0; i < 3000; i++ {
		t := make(relation.Tuple, 6)
		base := rng.Intn(50)
		t[0] = relation.Int(int64(base))
		t[1] = relation.Int(int64(base % 7)) // a0 -> a1 exactly
		for j := 2; j < 6; j++ {
			t[j] = relation.Int(int64(rng.Intn(5)))
		}
		r.MustInsert(t)
	}
	res := Mine(r, Config{})
	best, ok := res.Best("a1")
	if !ok || best.Confidence < 0.99 {
		t.Errorf("a0 -> a1 should be mined with conf 1: %v %v", best, ok)
	}
}
