package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteCSV encodes the relation as CSV. The header row carries typed column
// names in "name:kind" form so that ReadCSV can reconstruct the schema.
// Null values encode as NullToken (`\N`).
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, r.Schema.Len())
	for i := 0; i < r.Schema.Len(); i++ {
		header[i] = r.Schema.Attr(i).String()
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("relation: write csv header: %w", err)
	}
	row := make([]string, r.Schema.Len())
	for _, t := range r.tuples {
		for i, v := range t {
			row[i] = v.Encode()
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("relation: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a relation written by WriteCSV. Columns whose header lacks
// a ":kind" suffix default to string.
func ReadCSV(name string, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read csv header: %w", err)
	}
	attrs := make([]Attribute, len(header))
	for i, h := range header {
		name, kindStr, found := strings.Cut(h, ":")
		kind := KindString
		if found {
			k, err := ParseKind(kindStr)
			if err != nil {
				return nil, fmt.Errorf("relation: column %d: %w", i, err)
			}
			kind = k
		}
		attrs[i] = Attribute{Name: strings.TrimSpace(name), Kind: kind}
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	rel := New(name, schema)
	var tuples []Tuple
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: read csv line %d: %w", line, err)
		}
		if len(rec) != schema.Len() {
			return nil, fmt.Errorf("relation: csv line %d: %d fields, want %d", line, len(rec), schema.Len())
		}
		t := make(Tuple, schema.Len())
		for i, field := range rec {
			v, err := Decode(schema.Attr(i).Kind, field)
			if err != nil {
				return nil, fmt.Errorf("relation: csv line %d column %s: %w", line, schema.Attr(i).Name, err)
			}
			t[i] = v
		}
		tuples = append(tuples, t)
	}
	if err := rel.InsertAll(tuples); err != nil {
		return nil, fmt.Errorf("relation: csv: %w", err)
	}
	return rel, nil
}

// SaveCSV writes the relation to the named file.
func (r *Relation) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("relation: save csv: %w", err)
	}
	if err := r.WriteCSV(f); err != nil {
		//lint:allow errdrop the WriteCSV error is already being returned; a second Close error adds nothing
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCSV reads a relation from the named file; the relation takes its name
// from the file's base name sans extension unless name is non-empty.
func LoadCSV(name, path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("relation: load csv: %w", err)
	}
	//lint:allow errdrop file opened read-only; Close cannot lose data
	defer f.Close()
	return ReadCSV(name, f)
}
