package relation

import "testing"

func carSchema() *Schema {
	return MustSchema(
		Attribute{"make", KindString},
		Attribute{"model", KindString},
		Attribute{"year", KindInt},
		Attribute{"body_style", KindString},
	)
}

func TestSchemaLookup(t *testing.T) {
	s := carSchema()
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	i, ok := s.Index("year")
	if !ok || i != 2 {
		t.Errorf("Index(year) = %d,%v", i, ok)
	}
	if _, ok := s.Index("price"); ok {
		t.Error("Index(price) should be absent")
	}
	if !s.Has("make") || s.Has("price") {
		t.Error("Has misbehaves")
	}
	if !s.HasAll([]string{"make", "model"}) {
		t.Error("HasAll(make,model) should be true")
	}
	if s.HasAll([]string{"make", "price"}) {
		t.Error("HasAll(make,price) should be false")
	}
	k, ok := s.KindOf("year")
	if !ok || k != KindInt {
		t.Errorf("KindOf(year) = %v,%v", k, ok)
	}
}

func TestSchemaDuplicate(t *testing.T) {
	_, err := NewSchema(Attribute{"a", KindInt}, Attribute{"a", KindString})
	if err == nil {
		t.Fatal("duplicate attribute should error")
	}
	_, err = NewSchema(Attribute{"", KindInt})
	if err == nil {
		t.Fatal("empty attribute name should error")
	}
}

func TestSchemaProject(t *testing.T) {
	s := carSchema()
	p, err := s.Project("year", "make")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Attr(0).Name != "year" || p.Attr(1).Name != "make" {
		t.Errorf("Project result %v", p)
	}
	if _, err := s.Project("nope"); err == nil {
		t.Error("projecting a missing attribute should error")
	}
}

func TestSchemaEqual(t *testing.T) {
	if !carSchema().Equal(carSchema()) {
		t.Error("identical schemas should be equal")
	}
	other := MustSchema(Attribute{"make", KindString})
	if carSchema().Equal(other) {
		t.Error("different schemas should not be equal")
	}
}

func TestMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on missing attribute should panic")
		}
	}()
	carSchema().MustIndex("nope")
}

func TestSchemaString(t *testing.T) {
	got := MustSchema(Attribute{"a", KindInt}).String()
	if got != "(a:int)" {
		t.Errorf("String() = %q", got)
	}
}
