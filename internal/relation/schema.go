package relation

import (
	"fmt"
	"strings"
)

// Attribute is a named, typed column of a relation schema.
type Attribute struct {
	Name string
	Kind Kind
}

// String renders the attribute as "name:kind".
func (a Attribute) String() string { return a.Name + ":" + a.Kind.String() }

// Schema is an ordered list of attributes with O(1) name lookup.
// A Schema is immutable after construction and safe for concurrent use.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be non-empty and unique (case-sensitive).
func NewSchema(attrs ...Attribute) (*Schema, error) {
	s := &Schema{
		attrs: make([]Attribute, len(attrs)),
		index: make(map[string]int, len(attrs)),
	}
	copy(s.attrs, attrs)
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation: attribute %d has empty name", i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q", a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error. Intended for statically
// known schemas in tests, examples and generators.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Index returns the position of the named attribute, or ok=false if the
// schema has no such attribute.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex returns the position of the named attribute and panics if the
// attribute does not exist. Use only when absence is a programming error.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("relation: schema has no attribute %q", name))
	}
	return i
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// HasAll reports whether the schema contains every named attribute.
func (s *Schema) HasAll(names []string) bool {
	for _, n := range names {
		if !s.Has(n) {
			return false
		}
	}
	return true
}

// KindOf returns the kind of the named attribute, or ok=false if absent.
func (s *Schema) KindOf(name string) (Kind, bool) {
	i, ok := s.index[name]
	if !ok {
		return KindNull, false
	}
	return s.attrs[i].Kind, true
}

// Project builds a new schema keeping only the named attributes, in the
// given order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	attrs := make([]Attribute, 0, len(names))
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return nil, fmt.Errorf("relation: project: no attribute %q", n)
		}
		attrs = append(attrs, s.attrs[i])
	}
	return NewSchema(attrs...)
}

// Equal reports whether two schemas have identical attribute lists.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "R(a:kind, b:kind, ...)".
func (s *Schema) String() string {
	parts := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
