package relation

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// ---------- reference implementations (deliberately naive) ----------

// naiveSelect is the ground truth Scan must match: full scan, every
// predicate evaluated via Query.Matches, insertion order.
func naiveSelect(r *Relation, q Query) []Tuple {
	var out []Tuple
	for _, t := range r.Tuples() {
		if q.Matches(r.Schema, t) {
			out = append(out, t)
		}
	}
	return out
}

// naiveAggregate is the pre-iterator Aggregate.Apply accumulation loop,
// duplicated here verbatim so Fold is tested against an independent
// implementation (Apply itself now delegates to Fold).
func naiveAggregate(a Aggregate, s *Schema, tuples []Tuple) (AggResult, error) {
	if a.Func == AggCount && a.Attr == "" {
		return AggResult{Value: float64(len(tuples)), Rows: len(tuples)}, nil
	}
	idx, ok := s.Index(a.Attr)
	if !ok {
		return AggResult{}, errNoAttr
	}
	var (
		count int
		sum   float64
		ext   Value
	)
	numeric := true
	for _, t := range tuples {
		v := t[idx]
		if v.IsNull() {
			continue
		}
		count++
		if f, ok := v.Numeric(); ok {
			sum += f
		} else {
			numeric = false
		}
		if ext.IsNull() {
			ext = v
			continue
		}
		c, ok := v.Compare(ext)
		if !ok {
			continue
		}
		switch a.Func {
		case AggMin:
			if c < 0 {
				ext = v
			}
		case AggMax:
			if c > 0 {
				ext = v
			}
		}
	}
	res := AggResult{Rows: count, Extremum: ext}
	switch a.Func {
	case AggCount:
		res.Value = float64(count)
	case AggSum:
		if !numeric {
			return res, errNonNumeric
		}
		res.Value = sum
	case AggAvg:
		if !numeric {
			return res, errNonNumeric
		}
		if count == 0 {
			res.Value = nan()
		} else {
			res.Value = sum / float64(count)
		}
	case AggMin, AggMax:
		if f, ok := ext.Numeric(); ok {
			res.Value = f
		} else {
			res.Value = nan()
		}
	}
	return res, nil
}

var (
	errNoAttr     = fmt.Errorf("no attribute")
	errNonNumeric = fmt.Errorf("non-numeric")
)

func nan() float64 { return math.NaN() }

// naiveJoin is a nested-loop equi-join: probe order outer, build order
// inner, nulls never join — the contract JoinSeq must reproduce.
func naiveJoin(build []Tuple, bcol int, probe []Tuple, pcol int) []Tuple {
	var out []Tuple
	for _, p := range probe {
		if p[pcol].IsNull() {
			continue
		}
		for _, b := range build {
			if b[bcol].IsNull() || !b[bcol].Equal(p[pcol]) {
				continue
			}
			j := append(append(make(Tuple, 0, len(b)+len(p)), b...), p...)
			out = append(out, j)
		}
	}
	return out
}

func sameTuples(t *testing.T, got, want []Tuple, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tuples, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: tuple %d = %v, want %v (order matters)", label, i, got[i], want[i])
		}
	}
}

// ---------- random relation / query generation ----------

var propSchema = MustSchema(
	Attribute{Name: "id", Kind: KindInt},
	Attribute{Name: "make", Kind: KindString},
	Attribute{Name: "price", Kind: KindFloat},
	Attribute{Name: "year", Kind: KindInt},
	Attribute{Name: "used", Kind: KindBool},
)

func randomRelation(rng *rand.Rand, n int) *Relation {
	makes := []string{"Audi", "BMW", "Honda", ""}
	r := New("prop", propSchema)
	for i := 0; i < n; i++ {
		t := Tuple{
			Int(int64(i)),
			String(makes[rng.Intn(len(makes))]),
			Float(float64(rng.Intn(5)) * 1000), // small domain: collisions
			Int(int64(2000 + rng.Intn(6))),
			Bool(rng.Intn(2) == 0),
		}
		// Sprinkle nulls everywhere but the id.
		for c := 1; c < len(t); c++ {
			if rng.Float64() < 0.15 {
				t[c] = Null()
			}
		}
		r.MustInsert(t)
	}
	return r
}

func randomQuery(rng *rand.Rand) Query {
	attrs := []string{"make", "price", "year", "used", "nosuch"}
	q := NewQuery("prop")
	for np := rng.Intn(4); np > 0; np-- {
		attr := attrs[rng.Intn(len(attrs))]
		var p Predicate
		switch rng.Intn(8) {
		case 0:
			p = IsNull(attr)
		case 1:
			p = Predicate{Attr: attr, Op: OpNotNull}
		case 2:
			p = Predicate{Attr: attr, Op: OpNe, Value: Int(int64(2000 + rng.Intn(6)))}
		case 3:
			p = Predicate{Attr: attr, Op: OpLt, Value: Float(float64(rng.Intn(5)) * 1000)}
		case 4:
			p = Between(attr, Int(int64(1000*rng.Intn(3))), Int(int64(1000*(2+rng.Intn(3)))))
		case 5:
			// The cross-kind probe: an int constant against the float
			// price column (and sometimes a float against int year).
			if rng.Intn(2) == 0 {
				p = Eq("price", Int(int64(rng.Intn(5))*1000))
			} else {
				p = Eq("year", Float(float64(2000+rng.Intn(6))))
			}
		case 6:
			// Equality against null: matches nothing, must stay empty.
			p = Eq(attr, Null())
		default:
			switch attr {
			case "make":
				p = Eq(attr, String([]string{"Audi", "BMW", "Honda", "Nope"}[rng.Intn(4)]))
			case "price":
				p = Eq(attr, Float(float64(rng.Intn(5))*1000))
			case "used":
				p = Eq(attr, Bool(rng.Intn(2) == 0))
			default:
				p = Eq(attr, Int(int64(2000+rng.Intn(6))))
			}
		}
		q = q.With(p)
	}
	return q
}

// ---------- lazy-vs-materialized equivalence ----------

func TestScanEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 300; trial++ {
		r := randomRelation(rng, rng.Intn(120))
		// Random index state: pre-warm some attribute indexes before the
		// query under test, sometimes invalidate them with an extra insert.
		for w := rng.Intn(3); w > 0; w-- {
			r.Count(NewQuery("prop", Eq("make", String("Audi"))))
			r.Count(NewQuery("prop", Eq("year", Int(2003))))
		}
		if rng.Intn(4) == 0 && r.Len() > 0 {
			r.MustInsert(r.Tuple(0).Clone())
		}
		q := randomQuery(rng)
		want := naiveSelect(r, q)
		sameTuples(t, r.Select(q), want, "Select vs naive ("+q.String()+")")
		if got := r.Scan(q).Collect(); len(got) != len(want) {
			t.Fatalf("Scan.Collect: %d tuples, want %d for %s", len(got), len(want), q)
		}
		if n := r.Count(q); n != len(want) {
			t.Fatalf("Count = %d, want %d for %s", n, len(want), q)
		}
	}
}

func FuzzScanEquivalence(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(42), int64(61))
	f.Add(int64(-7), int64(0))
	f.Fuzz(func(t *testing.T, relSeed, qSeed int64) {
		r := randomRelation(rand.New(rand.NewSource(relSeed)), 60)
		qrng := rand.New(rand.NewSource(qSeed))
		for i := 0; i < 8; i++ {
			q := randomQuery(qrng)
			sameTuples(t, r.Select(q), naiveSelect(r, q), "fuzz "+q.String())
		}
	})
}

// TestScanCrossKindProbe is the regression for the index-probe kind bug:
// Value.Key is kind-sensitive while Predicate.Matches compares numerics
// across kinds, so an int constant probing a float column's hash index used
// to land on a missing key and return a falsely empty result.
func TestScanCrossKindProbe(t *testing.T) {
	r := New("cars", propSchema)
	r.MustInsert(Tuple{Int(1), String("Audi"), Float(3000), Int(2001), Bool(true)})
	r.MustInsert(Tuple{Int(2), String("BMW"), Float(3000), Int(2002), Bool(false)})
	r.MustInsert(Tuple{Int(3), String("BMW"), Float(4000), Int(2003), Bool(false)})

	// Build the indexes first so the probe path (not the fallback full
	// scan) answers the cross-kind queries.
	r.Count(NewQuery("cars", Eq("price", Float(0))))
	r.Count(NewQuery("cars", Eq("year", Int(0))))

	if n := r.Count(NewQuery("cars", Eq("price", Int(3000)))); n != 2 {
		t.Errorf("int constant on float column: %d matches, want 2", n)
	}
	if n := r.Count(NewQuery("cars", Eq("year", Float(2002)))); n != 1 {
		t.Errorf("float constant on int column: %d matches, want 1", n)
	}
	if n := r.Count(NewQuery("cars", Eq("year", Float(2002.5)))); n != 0 {
		t.Errorf("non-integral float on int column: %d matches, want 0", n)
	}
	if n := r.Count(NewQuery("cars", Eq("make", Int(1)))); n != 0 {
		t.Errorf("int constant on string column: %d matches, want 0", n)
	}
	if n := r.Count(NewQuery("cars", Eq("price", Null()))); n != 0 {
		t.Errorf("equality against null: %d matches, want 0", n)
	}
}

func TestFoldMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	aggs := []Aggregate{
		{Func: AggCount},
		{Func: AggCount, Attr: "price"},
		{Func: AggSum, Attr: "price"},
		{Func: AggAvg, Attr: "price"},
		{Func: AggMin, Attr: "make"},
		{Func: AggMax, Attr: "make"},
		{Func: AggMin, Attr: "year"},
		{Func: AggMax, Attr: "year"},
		{Func: AggSum, Attr: "make"}, // error path: Sum over strings
		{Func: AggAvg, Attr: "nosuch"},
	}
	for trial := 0; trial < 50; trial++ {
		r := randomRelation(rng, rng.Intn(60))
		for _, a := range aggs {
			want, werr := naiveAggregate(a, r.Schema, r.Tuples())
			got, gerr := a.Fold(r.Schema, r.All())
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s: Fold err=%v, Apply err=%v", a, gerr, werr)
			}
			if werr != nil {
				continue
			}
			// NaN != NaN: compare via string-insensitive identity.
			if got.Rows != want.Rows || !floatsIdentical(got.Value, want.Value) || !got.Extremum.Identical(want.Extremum) {
				t.Fatalf("%s: Fold %+v, Apply %+v", a, got, want)
			}
		}
	}
}

func floatsIdentical(a, b float64) bool {
	return a == b || (a != a && b != b) // both NaN
}

func TestDistinctOnSeqEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	attrSets := [][]string{{"make"}, {"make", "year"}, {"price", "used"}, {"make", "nosuch"}}
	for trial := 0; trial < 40; trial++ {
		r := randomRelation(rng, rng.Intn(80))
		for _, attrs := range attrSets {
			want := DistinctOn(r.Schema, r.Tuples(), attrs)
			got := DistinctOnSeq(r.Schema, r.All(), attrs).Collect()
			sameTuples(t, got, want, "DistinctOnSeq")
		}
	}
}

func TestJoinSeqEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		build := randomRelation(rng, rng.Intn(40))
		probe := randomRelation(rng, rng.Intn(40))
		bcol, pcol := 2, 2 // join on price (floats with collisions and nulls)
		want := naiveJoin(build.Tuples(), bcol, probe.Tuples(), pcol)
		got := JoinSeq(build.All(), bcol, probe.All(), pcol).Collect()
		sameTuples(t, got, want, "JoinSeq vs nested loop")
	}
}

// ---------- early close ----------

func TestTakeStopsPulling(t *testing.T) {
	r := randomRelation(rand.New(rand.NewSource(3)), 100)
	pulled := 0
	counted := r.All().Map(func(t Tuple) Tuple { pulled++; return t }).Take(5).Count()
	if counted != 5 {
		t.Fatalf("Take(5).Count() = %d", counted)
	}
	if pulled != 5 {
		t.Errorf("upstream pulled %d tuples after Take(5); early close should stop the pipeline", pulled)
	}
	// Breaking a range loop closes the whole chain too.
	pulled = 0
	for range r.Scan(Query{}).Map(func(t Tuple) Tuple { pulled++; return t }) {
		break
	}
	if pulled != 1 {
		t.Errorf("break after first tuple still pulled %d", pulled)
	}
}

// ---------- ownership regressions ----------

// TestSampleDoesNotAliasStore is the regression for Sample sharing Tuple
// backing arrays with the live relation: a sampled world that gets mutated
// (eval's MakeIncomplete nulling attributes) must never write through.
func TestSampleDoesNotAliasStore(t *testing.T) {
	r := randomRelation(rand.New(rand.NewSource(5)), 30)
	orig := r.Clone()
	for _, n := range []int{10, 30, 50} { // below, at, above Len
		s := r.Sample(n, rand.New(rand.NewSource(9)))
		for i := 0; i < s.Len(); i++ {
			tu := s.Tuple(i)
			for c := range tu {
				tu[c] = Null()
			}
		}
		for i := 0; i < r.Len(); i++ {
			if !r.Tuple(i).Equal(orig.Tuple(i)) {
				t.Fatalf("Sample(%d): mutating the sample corrupted source tuple %d", n, i)
			}
		}
	}
}

func TestCoerceDoesNotMutateOnError(t *testing.T) {
	r := New("prop", propSchema)
	// price is an int that would coerce to float, but `used` fails
	// validation afterwards: the caller's tuple must come back untouched.
	bad := Tuple{Int(1), String("Audi"), Int(3000), Int(2001), String("oops")}
	if err := r.Insert(bad); err == nil {
		t.Fatal("insert should fail on the bool column")
	}
	if bad[2].Kind() != KindInt {
		t.Errorf("price was half-coerced to %s on a failed insert", bad[2].Kind())
	}
}

// ---------- concurrency ----------

// TestConcurrentSelectDuringFirstIndexBuild exercises the indexed-atomic /
// mutex handoff: many goroutines Select concurrently right after a bulk
// load, so the first index build races with other readers (run under
// -race).
func TestConcurrentSelectDuringFirstIndexBuild(t *testing.T) {
	for round := 0; round < 10; round++ {
		r := randomRelation(rand.New(rand.NewSource(int64(round))), 500)
		queries := []Query{
			NewQuery("prop", Eq("make", String("BMW"))),
			NewQuery("prop", Eq("year", Int(2003))),
			NewQuery("prop", IsNull("price")),
			NewQuery("prop", Eq("price", Int(2000))), // cross-kind probe
			NewQuery("prop"),
		}
		want := make([]int, len(queries))
		for i, q := range queries {
			want[i] = len(naiveSelect(r, q))
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i, q := range queries {
					if n := r.Count(q); n != want[i] {
						t.Errorf("goroutine %d: Count(%s) = %d, want %d", g, q, n, want[i])
					}
				}
			}(g)
		}
		wg.Wait()
	}
}
