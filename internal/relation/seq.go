package relation

// This file is the pull-based relational-algebra core. Every operator —
// selection (Relation.Scan), projection (ProjectSeq), duplicate
// elimination (DistinctOnSeq), hash join (JoinSeq) and the streaming
// aggregate fold (Aggregate.Fold) — produces or consumes a TupleSeq, so a
// whole plan runs tuple-at-a-time without materializing intermediate
// slices. The batch entry points (Select, DistinctOn, ProjectTuples,
// Aggregate.Apply) are thin collectors over the same iterators, proven
// tuple-for-tuple identical (order included) to the pre-iterator
// implementations by the equivalence suite in seq_test.go.
//
// Ownership rules (enforced by the tupleescape analyzer, see DESIGN.md):
//
//   - A tuple yielded by a TupleSeq may alias the relation's backing store.
//     It is valid only for the duration of the yield; a consumer that wants
//     to hold it afterwards must take Tuple.Clone (or use Cloned, the
//     pipeline form of that barrier).
//   - Operators that construct fresh tuples (projection, distinct-on,
//     join concatenation) yield tuples the consumer owns outright.
//   - Close semantics: returning false from yield (breaking out of a
//     range loop) stops the pipeline immediately. Operators hold no locks
//     and own no resources while yielding, so early termination — the
//     PR 3 top-N bound, PR 5 breaker skips, a source's MaxResults
//     truncation — is simply ceasing to pull. Nothing leaks.

// TupleSeq is a pull-based stream of tuples — the same shape as
// iter.Seq[Tuple], defined locally so operators can hang off it as
// methods. Iterate with `for t := range seq`; break to close early.
type TupleSeq func(yield func(Tuple) bool)

// FromTuples adapts a tuple slice to the pipeline. The yielded tuples
// alias the slice's.
func FromTuples(ts []Tuple) TupleSeq {
	return func(yield func(Tuple) bool) {
		for _, t := range ts {
			if !yield(t) {
				return
			}
		}
	}
}

// All streams every tuple of the relation in insertion order. The yielded
// tuples alias the relation's store.
func (r *Relation) All() TupleSeq {
	return FromTuples(r.tuples)
}

// Filter yields only the tuples keep accepts.
func (s TupleSeq) Filter(keep func(Tuple) bool) TupleSeq {
	return func(yield func(Tuple) bool) {
		for t := range s {
			if keep(t) && !yield(t) {
				return
			}
		}
	}
}

// Map yields f(t) for every tuple. f may return its argument unchanged
// (the yielded tuple then keeps its upstream ownership) or a fresh tuple.
func (s TupleSeq) Map(f func(Tuple) Tuple) TupleSeq {
	return func(yield func(Tuple) bool) {
		for t := range s {
			if !yield(f(t)) {
				return
			}
		}
	}
}

// Take yields at most n tuples, closing the upstream early once the quota
// is met. n <= 0 yields nothing.
func (s TupleSeq) Take(n int) TupleSeq {
	return func(yield func(Tuple) bool) {
		if n <= 0 {
			return
		}
		left := n
		for t := range s {
			if !yield(t) {
				return
			}
			left--
			if left == 0 {
				return
			}
		}
	}
}

// Cloned is the ownership barrier: every yielded tuple is a deep copy the
// consumer owns, never aliasing the relation store.
func (s TupleSeq) Cloned() TupleSeq {
	return s.Map(func(t Tuple) Tuple { return t.Clone() })
}

// Collect materializes the stream. Ownership follows the stream: a
// collected Scan aliases the store (like Select), a collected Cloned or
// projection does not. Nil when the stream is empty, matching Select.
func (s TupleSeq) Collect() []Tuple {
	var out []Tuple
	for t := range s {
		//lint:allow tupleescape Collect is the documented materialization point; ownership follows the stream's contract
		out = append(out, t)
	}
	return out
}

// Count drains the stream and returns the number of tuples, materializing
// nothing.
func (s TupleSeq) Count() int {
	n := 0
	for range s {
		n++
	}
	return n
}

// DistinctOnSeq streams the distinct value combinations over the named
// attributes, in first-appearance order, as fresh projected tuples the
// consumer owns. Tuples with a null on any of the attributes are skipped:
// a null determining-set value cannot seed a rewritten query. An unknown
// attribute yields an empty stream.
func DistinctOnSeq(s *Schema, seq TupleSeq, attrs []string) TupleSeq {
	return func(yield func(Tuple) bool) {
		cols := make([]int, len(attrs))
		for i, a := range attrs {
			c, ok := s.Index(a)
			if !ok {
				return
			}
			cols[i] = c
		}
		seen := make(map[string]bool)
		for t := range seq {
			null := false
			for _, c := range cols {
				if t[c].IsNull() {
					null = true
					break
				}
			}
			if null {
				continue
			}
			k := t.KeyOn(cols)
			if seen[k] {
				continue
			}
			seen[k] = true
			proj := make(Tuple, len(cols))
			for i, c := range cols {
				proj[i] = t[c]
			}
			if !yield(proj) {
				return
			}
		}
	}
}

// ProjectSeq streams each tuple projected onto the named attributes of
// schema s, in the given order, as fresh tuples the consumer owns. The
// projected schema is returned alongside.
func ProjectSeq(s *Schema, seq TupleSeq, attrs []string) (TupleSeq, *Schema, error) {
	ps, err := s.Project(attrs...)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = s.MustIndex(a)
	}
	out := func(yield func(Tuple) bool) {
		for t := range seq {
			pt := make(Tuple, len(cols))
			for j, c := range cols {
				pt[j] = t[c]
			}
			if !yield(pt) {
				return
			}
		}
	}
	return out, ps, nil
}

// JoinSeq hash-joins two tuple streams on equality of the given columns
// (SQL semantics: nulls never join). The build side is consumed in full
// when iteration starts — the one barrier inherent to a hash join — and
// the probe side streams: each yielded tuple is the fresh concatenation
// build-tuple ++ probe-tuple, owned by the consumer. Output order is probe
// order, with build-side matches in build insertion order, so the result
// is deterministic.
func JoinSeq(build TupleSeq, buildCol int, probe TupleSeq, probeCol int) TupleSeq {
	return func(yield func(Tuple) bool) {
		index := make(map[string][]Tuple)
		for t := range build {
			v := t[buildCol]
			if v.IsNull() {
				continue
			}
			//lint:allow tupleescape hash-join build table retains build-side tuples until iteration ends, per the operator contract
			index[v.Key()] = append(index[v.Key()], t)
		}
		for t := range probe {
			v := t[probeCol]
			if v.IsNull() {
				continue
			}
			for _, b := range index[v.Key()] {
				joined := make(Tuple, 0, len(b)+len(t))
				joined = append(joined, b...)
				joined = append(joined, t...)
				if !yield(joined) {
					return
				}
			}
		}
	}
}
