package relation

import (
	"testing"
	"testing/quick"
)

func sampleTuple() Tuple {
	return Tuple{String("Honda"), String("Civic"), Int(2004), Null()}
}

func TestPredicateEq(t *testing.T) {
	s := carSchema()
	tu := sampleTuple()
	if !Eq("make", String("Honda")).Matches(s, tu) {
		t.Error("make=Honda should match")
	}
	if Eq("make", String("Toyota")).Matches(s, tu) {
		t.Error("make=Toyota should not match")
	}
	// Null attribute never matches equality.
	if Eq("body_style", String("Sedan")).Matches(s, tu) {
		t.Error("null body_style should not match Sedan")
	}
	// Unknown attribute never matches.
	if Eq("price", Int(1)).Matches(s, tu) {
		t.Error("unknown attribute should not match")
	}
}

func TestPredicateOrderingOps(t *testing.T) {
	s := carSchema()
	tu := sampleTuple() // year = 2004
	cases := []struct {
		p    Predicate
		want bool
	}{
		{Predicate{Attr: "year", Op: OpLt, Value: Int(2005)}, true},
		{Predicate{Attr: "year", Op: OpLt, Value: Int(2004)}, false},
		{Predicate{Attr: "year", Op: OpLe, Value: Int(2004)}, true},
		{Predicate{Attr: "year", Op: OpGt, Value: Int(2003)}, true},
		{Predicate{Attr: "year", Op: OpGe, Value: Int(2005)}, false},
		{Predicate{Attr: "year", Op: OpNe, Value: Int(2004)}, false},
		{Predicate{Attr: "year", Op: OpNe, Value: Int(1999)}, true},
		{Between("year", Int(2000), Int(2004)), true},
		{Between("year", Int(2005), Int(2010)), false},
		{Between("year", Int(2004), Int(2004)), true},
	}
	for _, c := range cases {
		if got := c.p.Matches(s, tu); got != c.want {
			t.Errorf("%s on year=2004: got %v want %v", c.p, got, c.want)
		}
	}
}

func TestPredicateNullOps(t *testing.T) {
	s := carSchema()
	tu := sampleTuple()
	if !IsNull("body_style").Matches(s, tu) {
		t.Error("body_style is null")
	}
	if IsNull("make").Matches(s, tu) {
		t.Error("make is not null")
	}
	if !(Predicate{Attr: "make", Op: OpNotNull}).Matches(s, tu) {
		t.Error("make is not null (OpNotNull)")
	}
	if (Predicate{Attr: "body_style", Op: OpNotNull}).Matches(s, tu) {
		t.Error("body_style OpNotNull should fail")
	}
	if !IsNull("body_style").NullOn(s, tu) {
		t.Error("NullOn(body_style)")
	}
	if Eq("make", String("x")).NullOn(s, tu) {
		t.Error("NullOn(make) should be false")
	}
}

func TestNullFailsEveryNonNullOp(t *testing.T) {
	s := carSchema()
	tu := Tuple{Null(), Null(), Null(), Null()}
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpBetween}
	for _, op := range ops {
		p := Predicate{Attr: "year", Op: op, Value: Int(2000), High: Int(2010)}
		if p.Matches(s, tu) {
			t.Errorf("null should fail op %v", op)
		}
	}
}

func TestQueryMatchesConjunction(t *testing.T) {
	s := carSchema()
	tu := sampleTuple()
	q := NewQuery("cars", Eq("make", String("Honda")), Eq("model", String("Civic")))
	if !q.Matches(s, tu) {
		t.Error("conjunction should match")
	}
	q2 := NewQuery("cars", Eq("make", String("Honda")), Eq("model", String("Accord")))
	if q2.Matches(s, tu) {
		t.Error("failed conjunct should fail the query")
	}
	empty := NewQuery("cars")
	if !empty.Matches(s, tu) {
		t.Error("empty query matches everything")
	}
}

func TestQueryConstrainedAttrs(t *testing.T) {
	q := NewQuery("cars",
		Eq("model", String("Accord")),
		Between("price", Int(15000), Int(20000)),
		Eq("model", String("Accord")), // duplicate attr
	)
	got := q.ConstrainedAttrs()
	if len(got) != 2 || got[0] != "model" || got[1] != "price" {
		t.Errorf("ConstrainedAttrs = %v", got)
	}
}

func TestQueryWithoutAttr(t *testing.T) {
	q := NewQuery("cars", Eq("model", String("Accord")), Eq("year", Int(2004)))
	q2 := q.WithoutAttr("model")
	if len(q2.Preds) != 1 || q2.Preds[0].Attr != "year" {
		t.Errorf("WithoutAttr = %v", q2)
	}
	// Original untouched.
	if len(q.Preds) != 2 {
		t.Error("WithoutAttr mutated the receiver")
	}
}

func TestQueryWith(t *testing.T) {
	q := NewQuery("cars", Eq("model", String("A4")))
	q2 := q.With(Eq("year", Int(2001)))
	if len(q2.Preds) != 2 || len(q.Preds) != 1 {
		t.Error("With should append without mutating receiver")
	}
}

func TestQueryKeyNormalizesOrder(t *testing.T) {
	a := NewQuery("cars", Eq("make", String("Honda")), Eq("year", Int(2004)))
	b := NewQuery("cars", Eq("year", Int(2004)), Eq("make", String("Honda")))
	if a.Key() != b.Key() {
		t.Error("Key should be order-insensitive")
	}
	c := NewQuery("cars", Eq("make", String("Honda")))
	if a.Key() == c.Key() {
		t.Error("different queries must have different keys")
	}
	d := a.Clone()
	d.Agg = &Aggregate{Func: AggCount}
	if a.Key() == d.Key() {
		t.Error("aggregate must alter the key")
	}
}

func TestQueryClone(t *testing.T) {
	q := NewQuery("cars", Eq("make", String("Honda")))
	q.Agg = &Aggregate{Func: AggSum, Attr: "price"}
	c := q.Clone()
	c.Preds[0] = Eq("make", String("Toyota"))
	c.Agg.Attr = "mileage"
	if q.Preds[0].Value.Str() != "Honda" || q.Agg.Attr != "price" {
		t.Error("Clone should deep-copy predicates and aggregate")
	}
}

func TestQueryString(t *testing.T) {
	q := NewQuery("cars", Eq("body_style", String("Convt")))
	want := "σ[body_style=Convt](cars)"
	if q.String() != want {
		t.Errorf("String() = %q want %q", q.String(), want)
	}
	if NewQuery("").String() != "σ[true]" {
		t.Errorf("empty query String() = %q", NewQuery("").String())
	}
}

// Property: Matches(WithoutAttr(a)) is implied by Matches(q) for any tuple —
// dropping a conjunct can only widen the result.
func TestWithoutAttrWidens(t *testing.T) {
	s := carSchema()
	f := func(year int16, makeSel bool) bool {
		tu := Tuple{String("Honda"), String("Civic"), Int(int64(year)), String("Sedan")}
		make := "Honda"
		if !makeSel {
			make = "Toyota"
		}
		q := NewQuery("cars", Eq("make", String(make)), Eq("year", Int(int64(year))))
		if q.Matches(s, tu) && !q.WithoutAttr("make").Matches(s, tu) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
