package relation

import (
	"fmt"
	"math"
)

// AggFunc enumerates the supported aggregate functions.
type AggFunc uint8

const (
	// AggCount is COUNT(*) when Attr is empty, COUNT(attr) otherwise.
	AggCount AggFunc = iota
	// AggSum is SUM(attr) over non-null numeric values.
	AggSum
	// AggAvg is AVG(attr) over non-null numeric values.
	AggAvg
	// AggMin is MIN(attr) over non-null values.
	AggMin
	// AggMax is MAX(attr) over non-null values.
	AggMax
)

// String renders the function name.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "Count"
	case AggSum:
		return "Sum"
	case AggAvg:
		return "Avg"
	case AggMin:
		return "Min"
	case AggMax:
		return "Max"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// Aggregate pairs an aggregate function with its target attribute.
type Aggregate struct {
	Func AggFunc
	Attr string // empty means "*" (only valid for AggCount)
}

// String renders "Func(attr)".
func (a Aggregate) String() string {
	attr := a.Attr
	if attr == "" {
		attr = "*"
	}
	return a.Func.String() + "(" + attr + ")"
}

// AggResult is the outcome of evaluating an aggregate over a set of tuples.
type AggResult struct {
	// Value is the aggregate value. For COUNT it is the integer count; for
	// MIN/MAX over non-numeric attributes Value is NaN and Extremum holds
	// the answer.
	Value float64
	// Extremum holds the MIN/MAX value for non-numeric attributes.
	Extremum Value
	// Rows is the number of tuples that contributed.
	Rows int
}

// Apply evaluates the aggregate over the given tuples under schema s.
// SQL semantics: nulls are skipped for attribute aggregates; COUNT(*)
// counts all tuples.
func (a Aggregate) Apply(s *Schema, tuples []Tuple) (AggResult, error) {
	return a.Fold(s, FromTuples(tuples))
}

// Fold evaluates the aggregate by streaming the tuple sequence through a
// constant-size accumulator — the lazy counterpart of Apply, and the reason
// Relation.Aggregate never materializes its selected set. Values are
// consumed during their yield (Value is a value type, so extremum tracking
// copies rather than retains), so the fold is safe over store-aliasing
// streams.
func (a Aggregate) Fold(s *Schema, seq TupleSeq) (AggResult, error) {
	if a.Func == AggCount && a.Attr == "" {
		n := seq.Count()
		return AggResult{Value: float64(n), Rows: n}, nil
	}
	idx, ok := s.Index(a.Attr)
	if !ok {
		return AggResult{}, fmt.Errorf("relation: aggregate: no attribute %q", a.Attr)
	}
	var (
		count int
		sum   float64
		ext   Value
	)
	numeric := true
	for t := range seq {
		v := t[idx]
		if v.IsNull() {
			continue
		}
		count++
		if f, ok := v.Numeric(); ok {
			sum += f
		} else {
			numeric = false
		}
		if ext.IsNull() {
			ext = v
			continue
		}
		c, ok := v.Compare(ext)
		if !ok {
			continue
		}
		switch a.Func {
		case AggMin:
			if c < 0 {
				ext = v
			}
		case AggMax:
			if c > 0 {
				ext = v
			}
		}
	}
	res := AggResult{Rows: count, Extremum: ext}
	switch a.Func {
	case AggCount:
		res.Value = float64(count)
	case AggSum:
		if !numeric {
			return res, fmt.Errorf("relation: Sum over non-numeric attribute %q", a.Attr)
		}
		res.Value = sum
	case AggAvg:
		if !numeric {
			return res, fmt.Errorf("relation: Avg over non-numeric attribute %q", a.Attr)
		}
		if count == 0 {
			res.Value = math.NaN()
		} else {
			res.Value = sum / float64(count)
		}
	case AggMin, AggMax:
		if f, ok := ext.Numeric(); ok {
			res.Value = f
		} else {
			res.Value = math.NaN()
		}
	default:
		return res, fmt.Errorf("relation: unknown aggregate %v", a.Func)
	}
	return res, nil
}
