package relation

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCSVRoundTripProperty fuzzes relations with random shapes, values and
// null placement, asserting WriteCSV → ReadCSV is the identity.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nattrs := 1 + rng.Intn(5)
		attrs := make([]Attribute, nattrs)
		kinds := []Kind{KindString, KindInt, KindFloat, KindBool}
		names := []string{"a", "b", "c", "d", "e"}
		for i := range attrs {
			attrs[i] = Attribute{Name: names[i], Kind: kinds[rng.Intn(len(kinds))]}
		}
		r := New("fuzz", MustSchema(attrs...))
		nrows := rng.Intn(30)
		for i := 0; i < nrows; i++ {
			tu := make(Tuple, nattrs)
			for j := range tu {
				if rng.Intn(5) == 0 {
					tu[j] = Null()
					continue
				}
				switch attrs[j].Kind {
				case KindString:
					// Include CSV-hostile characters, the escape tokens
					// themselves, and the empty string.
					choices := []string{
						"plain", "with,comma", "with\"quote", "with\nnewline",
						"ünicode", " spaced ", "", `\N`, `\E`, `\\double`, `\other`,
					}
					tu[j] = String(choices[rng.Intn(len(choices))])
				case KindInt:
					tu[j] = Int(rng.Int63n(1e6) - 5e5)
				case KindFloat:
					tu[j] = Float(rng.NormFloat64() * 1e3)
				case KindBool:
					tu[j] = Bool(rng.Intn(2) == 0)
				}
			}
			r.MustInsert(tu)
		}
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV("fuzz", &buf)
		if err != nil {
			return false
		}
		if !got.Schema.Equal(r.Schema) || got.Len() != r.Len() {
			return false
		}
		for i := 0; i < r.Len(); i++ {
			if !got.Tuple(i).Equal(r.Tuple(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCSVEscapeTokens pins the escape scheme: null via \N, empty string
// via \E, literal backslash-leading strings via doubling — all of which
// must round trip, including in single-column relations.
func TestCSVEscapeTokens(t *testing.T) {
	s := MustSchema(Attribute{Name: "a", Kind: KindString})
	r := New("r", s)
	values := []Value{
		Null(), String(""), String(`\N`), String(`\E`), String(`\\`), String(`\x`), String("plain"),
	}
	for _, v := range values {
		r.MustInsert(Tuple{v})
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("r", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(values) {
		t.Fatalf("rows = %d, want %d", got.Len(), len(values))
	}
	for i, want := range values {
		if !got.Tuple(i)[0].Identical(want) {
			t.Errorf("row %d: got %v want %v", i, got.Tuple(i)[0], want)
		}
	}
}

// TestCSVAllNullSingleColumn pins the blank-line regression: a fully-null
// row in a one-column relation must not be silently dropped.
func TestCSVAllNullSingleColumn(t *testing.T) {
	s := MustSchema(Attribute{Name: "a", Kind: KindInt})
	r := New("r", s)
	r.MustInsert(Tuple{Null()})
	r.MustInsert(Tuple{Int(7)})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("r", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (all-null row dropped?)", got.Len())
	}
	if !got.Tuple(0)[0].IsNull() || got.Tuple(1)[0].IntVal() != 7 {
		t.Error("values corrupted")
	}
}
