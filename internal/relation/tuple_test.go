package relation

import "testing"

func TestTupleCompleteness(t *testing.T) {
	full := Tuple{String("Honda"), String("Civic"), Int(2004), String("Sedan")}
	if !full.IsComplete() || full.NullCount() != 0 {
		t.Error("full tuple misclassified")
	}
	hole := Tuple{String("Honda"), Null(), Int(2004), Null()}
	if hole.IsComplete() || hole.NullCount() != 2 {
		t.Error("incomplete tuple misclassified")
	}
	s := carSchema()
	got := hole.NullAttrs(s)
	if len(got) != 2 || got[0] != "model" || got[1] != "body_style" {
		t.Errorf("NullAttrs = %v", got)
	}
}

func TestNullCountOn(t *testing.T) {
	s := carSchema()
	// Paper's running example: only tuples with <=1 null over constrained
	// attributes are ranked.
	tu := Tuple{String("Honda"), Null(), Null(), String("Coupe")}
	if n := tu.NullCountOn(s, []string{"model", "year"}); n != 2 {
		t.Errorf("NullCountOn(model,year) = %d", n)
	}
	if n := tu.NullCountOn(s, []string{"model", "body_style"}); n != 1 {
		t.Errorf("NullCountOn(model,body_style) = %d", n)
	}
	if n := tu.NullCountOn(s, []string{"make"}); n != 0 {
		t.Errorf("NullCountOn(make) = %d", n)
	}
	// Unknown attributes are ignored rather than counted.
	if n := tu.NullCountOn(s, []string{"price"}); n != 0 {
		t.Errorf("NullCountOn(price) = %d", n)
	}
}

func TestIsCompletionOf(t *testing.T) {
	incomplete := Tuple{String("Honda"), Null(), Int(2004), Null()}
	yes := Tuple{String("Honda"), String("Civic"), Int(2004), String("Sedan")}
	no := Tuple{String("Toyota"), String("Camry"), Int(2004), String("Sedan")}
	if !yes.IsCompletionOf(incomplete) {
		t.Error("yes should complete incomplete")
	}
	if no.IsCompletionOf(incomplete) {
		t.Error("no should not complete incomplete")
	}
	// A complete tuple is a completion of itself.
	if !yes.IsCompletionOf(yes) {
		t.Error("a tuple completes itself")
	}
	// Arity mismatch is never a completion.
	if yes.IsCompletionOf(Tuple{Null()}) {
		t.Error("arity mismatch should fail")
	}
}

func TestTupleEqualAndKeys(t *testing.T) {
	a := Tuple{String("x"), Null(), Int(1)}
	b := Tuple{String("x"), Null(), Int(1)}
	c := Tuple{String("x"), Null(), Int(2)}
	if !a.Equal(b) {
		t.Error("a should equal b (null identical to null)")
	}
	if a.Equal(c) {
		t.Error("a should not equal c")
	}
	if a.Key() != b.Key() || a.Key() == c.Key() {
		t.Error("Key inconsistent with Equal")
	}
	if a.KeyOn([]int{0, 2}) == c.KeyOn([]int{0, 2}) {
		t.Error("KeyOn should differ on differing columns")
	}
	if a.KeyOn([]int{0, 1}) != c.KeyOn([]int{0, 1}) {
		t.Error("KeyOn should match on shared columns")
	}
}

func TestTupleKeyNoCollisionAcrossPositions(t *testing.T) {
	// ("ab","c") must not collide with ("a","bc").
	a := Tuple{String("ab"), String("c")}
	b := Tuple{String("a"), String("bc")}
	if a.Key() == b.Key() {
		t.Error("tuple key collision across field boundaries")
	}
}

func TestTupleClone(t *testing.T) {
	a := Tuple{String("x"), Int(1)}
	b := a.Clone()
	b[0] = String("y")
	if a[0].Str() != "x" {
		t.Error("Clone should not share storage")
	}
}

func TestTupleString(t *testing.T) {
	got := Tuple{String("Honda"), Null()}.String()
	if got != "⟨Honda, null⟩" {
		t.Errorf("String() = %q", got)
	}
}
