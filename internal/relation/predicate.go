package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates the comparison operators supported in selection predicates.
type Op uint8

const (
	// OpEq matches tuples whose attribute equals the predicate value.
	OpEq Op = iota
	// OpNe matches tuples whose attribute differs from the predicate value.
	OpNe
	// OpLt matches attribute < value.
	OpLt
	// OpLe matches attribute <= value.
	OpLe
	// OpGt matches attribute > value.
	OpGt
	// OpGe matches attribute >= value.
	OpGe
	// OpBetween matches value <= attribute <= high (inclusive both ends,
	// matching the paper's "Price between 15000 and 20000" examples).
	OpBetween
	// OpIsNull matches tuples whose attribute is null. Autonomous web
	// sources generally refuse this operator; it exists for baselines and
	// for oracular evaluation against ground truth.
	OpIsNull
	// OpNotNull matches tuples whose attribute is non-null.
	OpNotNull
)

// String renders the operator symbol.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBetween:
		return "between"
	case OpIsNull:
		return "is null"
	case OpNotNull:
		return "is not null"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Predicate is a single selection condition on one attribute.
// High is used only by OpBetween.
type Predicate struct {
	Attr  string
	Op    Op
	Value Value
	High  Value
}

// Eq builds an equality predicate, the workhorse of web-form queries.
func Eq(attr string, v Value) Predicate { return Predicate{Attr: attr, Op: OpEq, Value: v} }

// Between builds an inclusive range predicate.
func Between(attr string, lo, hi Value) Predicate {
	return Predicate{Attr: attr, Op: OpBetween, Value: lo, High: hi}
}

// IsNull builds a null-binding predicate.
func IsNull(attr string) Predicate { return Predicate{Attr: attr, Op: OpIsNull} }

// Matches evaluates the predicate against tuple t under schema s.
// SQL three-valued semantics collapse to boolean: a null attribute value
// fails every operator except OpIsNull.
func (p Predicate) Matches(s *Schema, t Tuple) bool {
	i, ok := s.Index(p.Attr)
	if !ok {
		return false
	}
	v := t[i]
	switch p.Op {
	case OpIsNull:
		return v.IsNull()
	case OpNotNull:
		return !v.IsNull()
	}
	if v.IsNull() {
		return false
	}
	switch p.Op {
	case OpEq:
		return v.Equal(p.Value)
	case OpNe:
		return !v.Equal(p.Value)
	case OpLt:
		c, ok := v.Compare(p.Value)
		return ok && c < 0
	case OpLe:
		c, ok := v.Compare(p.Value)
		return ok && c <= 0
	case OpGt:
		c, ok := v.Compare(p.Value)
		return ok && c > 0
	case OpGe:
		c, ok := v.Compare(p.Value)
		return ok && c >= 0
	case OpBetween:
		lo, ok1 := v.Compare(p.Value)
		hi, ok2 := v.Compare(p.High)
		return ok1 && ok2 && lo >= 0 && hi <= 0
	}
	return false
}

// NullOn reports whether tuple t is null on the predicate's attribute.
func (p Predicate) NullOn(s *Schema, t Tuple) bool {
	i, ok := s.Index(p.Attr)
	return ok && t[i].IsNull()
}

// String renders the predicate in the paper's sigma-subscript style.
func (p Predicate) String() string {
	switch p.Op {
	case OpIsNull, OpNotNull:
		return p.Attr + " " + p.Op.String()
	case OpBetween:
		return fmt.Sprintf("%s between %s and %s", p.Attr, p.Value, p.High)
	default:
		return fmt.Sprintf("%s%s%s", p.Attr, p.Op, p.Value)
	}
}

// Query is a conjunctive selection over one relation, optionally carrying an
// aggregate. The zero Query selects everything.
type Query struct {
	// Relation names the target relation (informational at this layer; the
	// executor is handed a relation explicitly).
	Relation string
	// Preds are conjunctive selection predicates.
	Preds []Predicate
	// Agg, if non-nil, turns the query into an aggregate query over the
	// selected tuples.
	Agg *Aggregate
}

// NewQuery builds a selection query over the named relation.
func NewQuery(rel string, preds ...Predicate) Query {
	return Query{Relation: rel, Preds: preds}
}

// Clone deep-copies the query.
func (q Query) Clone() Query {
	out := q
	out.Preds = make([]Predicate, len(q.Preds))
	copy(out.Preds, q.Preds)
	if q.Agg != nil {
		agg := *q.Agg
		out.Agg = &agg
	}
	return out
}

// Matches reports whether tuple t satisfies every predicate (a certain
// answer in Definition 2 when the query is a selection).
func (q Query) Matches(s *Schema, t Tuple) bool {
	for _, p := range q.Preds {
		if !p.Matches(s, t) {
			return false
		}
	}
	return true
}

// matchesExcept is Matches with the predicate at index skip omitted. Scan
// uses it to avoid re-evaluating the drive predicate, which every tuple on
// the drive posting list satisfies by construction. skip < 0 evaluates all
// predicates.
func (q Query) matchesExcept(s *Schema, t Tuple, skip int) bool {
	for i, p := range q.Preds {
		if i == skip {
			continue
		}
		if !p.Matches(s, t) {
			return false
		}
	}
	return true
}

// ConstrainedAttrs returns the distinct attribute names constrained by the
// query, in first-appearance order.
func (q Query) ConstrainedAttrs() []string {
	seen := make(map[string]bool, len(q.Preds))
	var out []string
	for _, p := range q.Preds {
		if !seen[p.Attr] {
			seen[p.Attr] = true
			out = append(out, p.Attr)
		}
	}
	return out
}

// PredOn returns the first predicate constraining the named attribute.
func (q Query) PredOn(attr string) (Predicate, bool) {
	for _, p := range q.Preds {
		if p.Attr == attr {
			return p, true
		}
	}
	return Predicate{}, false
}

// WithoutAttr returns a copy of the query with every predicate on the named
// attribute removed. This is the core rewriting primitive: rewritten queries
// must not constrain the attribute whose nulls we want to retrieve.
func (q Query) WithoutAttr(attr string) Query {
	out := q.Clone()
	preds := out.Preds[:0]
	for _, p := range out.Preds {
		if p.Attr != attr {
			preds = append(preds, p)
		}
	}
	out.Preds = preds
	return out
}

// With returns a copy of the query with the extra predicate appended.
func (q Query) With(p Predicate) Query {
	out := q.Clone()
	out.Preds = append(out.Preds, p)
	return out
}

// Key returns a canonical encoding of the query, used to avoid issuing the
// same rewritten query twice. Predicate order is normalized.
func (q Query) Key() string {
	parts := make([]string, 0, len(q.Preds)+2)
	parts = append(parts, q.Relation)
	ps := make([]string, len(q.Preds))
	for i, p := range q.Preds {
		ps[i] = p.Attr + "\x1e" + p.Op.String() + "\x1e" + p.Value.Key() + "\x1e" + p.High.Key()
	}
	sort.Strings(ps)
	parts = append(parts, ps...)
	if q.Agg != nil {
		parts = append(parts, q.Agg.String())
	}
	return strings.Join(parts, "\x1f")
}

// String renders the query in the paper's sigma notation.
func (q Query) String() string {
	parts := make([]string, len(q.Preds))
	for i, p := range q.Preds {
		parts[i] = p.String()
	}
	sel := "σ[" + strings.Join(parts, " ∧ ") + "]"
	if len(q.Preds) == 0 {
		sel = "σ[true]"
	}
	if q.Relation != "" {
		sel += "(" + q.Relation + ")"
	}
	if q.Agg != nil {
		sel = q.Agg.String() + " " + sel
	}
	return sel
}
