package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "null"},
		{String("Honda"), KindString, "Honda"},
		{Int(2004), KindInt, "2004"},
		{Float(1.5), KindFloat, "1.5"},
		{Bool(true), KindBool, "true"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind() = %v, want %v", c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String() = %q, want %q", c.v.String(), c.str)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value should be null")
	}
}

func TestNullNeverEqual(t *testing.T) {
	if Null().Equal(Null()) {
		t.Error("null = null must be false under SQL semantics")
	}
	if Null().Equal(Int(1)) || Int(1).Equal(Null()) {
		t.Error("null = 1 must be false")
	}
	if !Null().Identical(Null()) {
		t.Error("Identical must treat null as identical to null")
	}
}

func TestCrossKindNumericEquality(t *testing.T) {
	if !Int(5).Equal(Float(5.0)) {
		t.Error("Int(5) should equal Float(5)")
	}
	if Int(5).Equal(Float(5.5)) {
		t.Error("Int(5) should not equal Float(5.5)")
	}
	if Int(5).Equal(String("5")) {
		t.Error("Int(5) should not equal String(5)")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Float(1.5), Int(2), -1, true},
		{String("a"), String("b"), -1, true},
		{Bool(false), Bool(true), -1, true},
		{Bool(true), Bool(true), 0, true},
		{Null(), Int(1), 0, false},
		{String("a"), Int(1), 0, false},
	}
	for _, c := range cases {
		got, ok := c.a.Compare(c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Compare(%v,%v) = %d,%v want %d,%v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Str on int", func() { Int(1).Str() })
	mustPanic("IntVal on string", func() { String("x").IntVal() })
	mustPanic("FloatVal on null", func() { Null().FloatVal() })
	mustPanic("BoolVal on int", func() { Int(1).BoolVal() })
}

func TestDecodeRoundTrip(t *testing.T) {
	vals := []Value{
		Null(), String("Convt"), Int(-42), Float(3.25), Bool(false),
	}
	kinds := []Kind{KindString, KindString, KindInt, KindFloat, KindBool}
	for i, v := range vals {
		got, err := Decode(kinds[i], v.Encode())
		if err != nil {
			t.Fatalf("Decode(%v): %v", v, err)
		}
		if !got.Identical(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(KindInt, "abc"); err == nil {
		t.Error("decoding 'abc' as int should error")
	}
	if _, err := Decode(KindFloat, "x.y"); err == nil {
		t.Error("decoding 'x.y' as float should error")
	}
	if _, err := Decode(KindBool, "maybe"); err == nil {
		t.Error("decoding 'maybe' as bool should error")
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{KindNull, KindString, KindInt, KindFloat, KindBool} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v,%v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("banana"); err == nil {
		t.Error("ParseKind(banana) should error")
	}
}

// Property: Key is injective on the generated sample of int/float/string
// values and consistent with Identical.
func TestValueKeyConsistentWithIdentical(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		vals := []Value{Int(a), Int(b), String(s1), String(s2), Null()}
		for _, x := range vals {
			for _, y := range vals {
				if (x.Key() == y.Key()) != x.Identical(y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and consistent with Equal for ints.
func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		c1, ok1 := x.Compare(y)
		c2, ok2 := y.Compare(x)
		if !ok1 || !ok2 {
			return false
		}
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatKeyPrecision(t *testing.T) {
	x, y := 0.1, 0.2 // runtime addition: 0.1+0.2 != 0.3 in float64
	a := Float(x + y)
	b := Float(0.3)
	if a.Key() == b.Key() {
		t.Error("0.1+0.2 and 0.3 must have distinct keys")
	}
	if Float(math.Inf(1)).Key() == Float(math.MaxFloat64).Key() {
		t.Error("inf and max float must differ")
	}
}

func TestNumeric(t *testing.T) {
	if f, ok := Int(7).Numeric(); !ok || f != 7 {
		t.Error("Int(7).Numeric() failed")
	}
	if f, ok := Float(2.5).Numeric(); !ok || f != 2.5 {
		t.Error("Float(2.5).Numeric() failed")
	}
	if _, ok := String("x").Numeric(); ok {
		t.Error("String.Numeric() should not be ok")
	}
	if _, ok := Null().Numeric(); ok {
		t.Error("Null.Numeric() should not be ok")
	}
}
