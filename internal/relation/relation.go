package relation

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Relation is an in-memory table: a schema plus tuples. Reads are safe for
// concurrent use once loading is finished; mutation is not synchronized.
type Relation struct {
	Name   string
	Schema *Schema

	tuples []Tuple

	mu      sync.Mutex
	indexes map[string]map[string][]int // attr -> value key -> tuple positions
	// indexed mirrors indexes != nil without the mutex, so the insert path
	// (which must invalidate) stays lock-free during bulk loading, before
	// any index has ever been built.
	indexed atomic.Bool
}

// New creates an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Insert appends a tuple after validating arity and kinds (null is valid for
// every attribute). The relation takes ownership of the tuple.
func (r *Relation) Insert(t Tuple) error {
	if err := r.coerce(t); err != nil {
		return err
	}
	r.tuples = append(r.tuples, t)
	r.invalidateIndexes()
	return nil
}

// InsertAll appends every tuple, validating each, and invalidates indexes at
// most once — the bulk-load entry point for generators and CSV loading. On a
// validation error the tuples before the bad one are already appended.
func (r *Relation) InsertAll(ts []Tuple) error {
	if cap(r.tuples)-len(r.tuples) < len(ts) {
		grown := make([]Tuple, len(r.tuples), len(r.tuples)+len(ts))
		copy(grown, r.tuples)
		r.tuples = grown
	}
	for _, t := range ts {
		if err := r.coerce(t); err != nil {
			r.invalidateIndexes()
			return err
		}
		r.tuples = append(r.tuples, t)
	}
	r.invalidateIndexes()
	return nil
}

// coerce validates arity and kinds (null is valid for every attribute),
// rewriting int constants destined for float columns in place.
func (r *Relation) coerce(t Tuple) error {
	if len(t) != r.Schema.Len() {
		return fmt.Errorf("relation %s: tuple arity %d, schema arity %d", r.Name, len(t), r.Schema.Len())
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		want := r.Schema.Attr(i).Kind
		if v.Kind() != want {
			// Permit int constants in float columns.
			if want == KindFloat && v.Kind() == KindInt {
				t[i] = Float(float64(v.IntVal()))
				continue
			}
			return fmt.Errorf("relation %s: attribute %s wants %s, got %s",
				r.Name, r.Schema.Attr(i).Name, want, v.Kind())
		}
	}
	return nil
}

// MustInsert is Insert that panics on error, for generators and tests.
func (r *Relation) MustInsert(t Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuple returns the i-th tuple (not a copy).
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Tuples returns the underlying tuple slice. Callers must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Clone deep-copies the relation (schema shared, tuples copied).
func (r *Relation) Clone() *Relation {
	out := New(r.Name, r.Schema)
	out.tuples = make([]Tuple, len(r.tuples))
	for i, t := range r.tuples {
		out.tuples[i] = t.Clone()
	}
	return out
}

func (r *Relation) invalidateIndexes() {
	// The common case during bulk loading: no index has ever been built, so
	// there is nothing to invalidate and no reason to touch the mutex.
	if !r.indexed.Load() {
		return
	}
	r.mu.Lock()
	r.indexes = nil
	r.indexed.Store(false)
	r.mu.Unlock()
}

// index returns (building if needed) the hash index for the named attribute.
func (r *Relation) index(attr string) map[string][]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.indexes == nil {
		r.indexes = make(map[string]map[string][]int)
		r.indexed.Store(true)
	}
	if idx, ok := r.indexes[attr]; ok {
		return idx
	}
	col, ok := r.Schema.Index(attr)
	if !ok {
		return nil
	}
	idx := make(map[string][]int)
	for i, t := range r.tuples {
		k := t[col].Key()
		idx[k] = append(idx[k], i)
	}
	r.indexes[attr] = idx
	return idx
}

// Select returns the tuples satisfying the query's predicates, driven by the
// smallest applicable index posting list. The returned slice aliases the
// relation's tuples.
func (r *Relation) Select(q Query) []Tuple {
	var out []Tuple
	r.scan(q, func(t Tuple) { out = append(out, t) })
	return out
}

// Count returns the number of tuples satisfying the query without
// materializing them.
func (r *Relation) Count(q Query) int {
	n := 0
	r.scan(q, func(Tuple) { n++ })
	return n
}

// scan invokes fn for every tuple satisfying q, in tuple-position order.
// All equality and is-null predicates are probed against their hash indexes
// and the smallest posting list drives the scan — a rewrite binding several
// determining attributes pays for the rarest one, not the first one written.
// Queries with no indexable predicate fall back to a full scan. Posting
// lists hold positions in insertion order, so the drive choice never changes
// the output order.
func (r *Relation) scan(q Query, fn func(Tuple)) {
	driven := false
	var drive []int
	for _, p := range q.Preds {
		if (p.Op != OpEq && p.Op != OpIsNull) || !r.Schema.Has(p.Attr) {
			continue
		}
		idx := r.index(p.Attr)
		if idx == nil {
			continue
		}
		key := p.Value.Key()
		if p.Op == OpIsNull {
			key = Null().Key()
		}
		list := idx[key]
		if !driven || len(list) < len(drive) {
			driven, drive = true, list
		}
		if len(drive) == 0 {
			// Some predicate matches nothing: the conjunction is empty.
			return
		}
	}
	if driven {
		for _, pos := range drive {
			if t := r.tuples[pos]; q.Matches(r.Schema, t) {
				fn(t)
			}
		}
		return
	}
	for _, t := range r.tuples {
		if q.Matches(r.Schema, t) {
			fn(t)
		}
	}
}

// Aggregate evaluates q's aggregate over the tuples selected by q's
// predicates. It errors if q carries no aggregate.
func (r *Relation) Aggregate(q Query) (AggResult, error) {
	if q.Agg == nil {
		return AggResult{}, fmt.Errorf("relation %s: query %s has no aggregate", r.Name, q)
	}
	return q.Agg.Apply(r.Schema, r.Select(q))
}

// DistinctOn returns the distinct value combinations over the named
// attributes among the given tuples, in first-appearance order. Tuples with
// a null on any of the attributes are skipped: a null determining-set value
// cannot seed a rewritten query.
func DistinctOn(s *Schema, tuples []Tuple, attrs []string) []Tuple {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		c, ok := s.Index(a)
		if !ok {
			return nil
		}
		cols[i] = c
	}
	seen := make(map[string]bool)
	var out []Tuple
	for _, t := range tuples {
		null := false
		for _, c := range cols {
			if t[c].IsNull() {
				null = true
				break
			}
		}
		if null {
			continue
		}
		k := t.KeyOn(cols)
		if seen[k] {
			continue
		}
		seen[k] = true
		proj := make(Tuple, len(cols))
		for i, c := range cols {
			proj[i] = t[c]
		}
		out = append(out, proj)
	}
	return out
}

// ProjectTuples projects each tuple onto the named attributes of schema s,
// in the given order. QPIAD internally projects the full attribute set and
// trims for the user at the end (Section 4 footnote); this is that trim.
func ProjectTuples(s *Schema, tuples []Tuple, attrs []string) ([]Tuple, *Schema, error) {
	ps, err := s.Project(attrs...)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = s.MustIndex(a)
	}
	out := make([]Tuple, len(tuples))
	for i, t := range tuples {
		pt := make(Tuple, len(cols))
		for j, c := range cols {
			pt[j] = t[c]
		}
		out[i] = pt
	}
	return out, ps, nil
}

// Sample returns a relation containing n tuples drawn uniformly without
// replacement using rng. If n >= Len, a clone is returned.
func (r *Relation) Sample(n int, rng *rand.Rand) *Relation {
	out := New(r.Name+"_sample", r.Schema)
	if n >= len(r.tuples) {
		out.tuples = make([]Tuple, len(r.tuples))
		copy(out.tuples, r.tuples)
		return out
	}
	perm := rng.Perm(len(r.tuples))[:n]
	out.tuples = make([]Tuple, 0, n)
	for _, i := range perm {
		out.tuples = append(out.tuples, r.tuples[i])
	}
	return out
}

// Domain returns the distinct non-null values of the named attribute in
// first-appearance order.
func (r *Relation) Domain(attr string) []Value {
	col, ok := r.Schema.Index(attr)
	if !ok {
		return nil
	}
	seen := make(map[string]bool)
	var out []Value
	for _, t := range r.tuples {
		v := t[col]
		if v.IsNull() {
			continue
		}
		k := v.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

// IncompleteFraction returns the fraction of tuples containing at least one
// null (the PerInc statistic of Section 5.4; also Table 1's first row).
func (r *Relation) IncompleteFraction() float64 {
	if len(r.tuples) == 0 {
		return 0
	}
	n := 0
	for _, t := range r.tuples {
		if !t.IsComplete() {
			n++
		}
	}
	return float64(n) / float64(len(r.tuples))
}

// NullFraction returns the fraction of tuples null on the named attribute.
func (r *Relation) NullFraction(attr string) float64 {
	col, ok := r.Schema.Index(attr)
	if !ok || len(r.tuples) == 0 {
		return 0
	}
	n := 0
	for _, t := range r.tuples {
		if t[col].IsNull() {
			n++
		}
	}
	return float64(n) / float64(len(r.tuples))
}
