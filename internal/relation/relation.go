package relation

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Relation is an in-memory table: a schema plus tuples. Reads are safe for
// concurrent use once loading is finished; mutation is not synchronized.
type Relation struct {
	Name   string
	Schema *Schema

	tuples []Tuple

	mu      sync.Mutex
	indexes map[string]map[string][]int // attr -> value key -> tuple positions
	// indexed mirrors indexes != nil without the mutex, so the insert path
	// (which must invalidate) stays lock-free during bulk loading, before
	// any index has ever been built.
	indexed atomic.Bool
}

// New creates an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Insert appends a tuple after validating arity and kinds (null is valid for
// every attribute). The relation takes ownership of the tuple.
func (r *Relation) Insert(t Tuple) error {
	if err := r.coerce(t); err != nil {
		return err
	}
	r.tuples = append(r.tuples, t)
	r.invalidateIndexes()
	return nil
}

// InsertAll appends every tuple, validating each, and invalidates indexes
// at most once — the bulk-load entry point for generators and CSV loading.
// The call is atomic: on a validation error the relation is rolled back to
// its prior state, so a failed bulk load never leaves a partial append in
// the caller's hands.
func (r *Relation) InsertAll(ts []Tuple) error {
	if cap(r.tuples)-len(r.tuples) < len(ts) {
		grown := make([]Tuple, len(r.tuples), len(r.tuples)+len(ts))
		copy(grown, r.tuples)
		r.tuples = grown
	}
	start := len(r.tuples)
	for _, t := range ts {
		if err := r.coerce(t); err != nil {
			// Roll back: zero the appended entries so the backing array does
			// not retain the caller's tuples, then truncate. The visible
			// prefix is exactly what it was, so existing indexes stay valid
			// and no invalidation is needed.
			clear(r.tuples[start:])
			r.tuples = r.tuples[:start]
			return err
		}
		r.tuples = append(r.tuples, t)
	}
	r.invalidateIndexes()
	return nil
}

// Grow pre-sizes the tuple store for n upcoming inserts, so bulk
// generators building 10M-tuple worlds append without repeated
// reallocation and copying.
func (r *Relation) Grow(n int) {
	if cap(r.tuples)-len(r.tuples) >= n {
		return
	}
	grown := make([]Tuple, len(r.tuples), len(r.tuples)+n)
	copy(grown, r.tuples)
	r.tuples = grown
}

// coerce validates arity and kinds (null is valid for every attribute),
// rewriting int constants destined for float columns in place. Validation
// runs fully before any mutation: a tuple that fails on a later attribute
// is returned to the caller untouched, never half-coerced.
func (r *Relation) coerce(t Tuple) error {
	if len(t) != r.Schema.Len() {
		return fmt.Errorf("relation %s: tuple arity %d, schema arity %d", r.Name, len(t), r.Schema.Len())
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		want := r.Schema.Attr(i).Kind
		if v.Kind() != want {
			// Permit int constants in float columns (coerced below, after
			// the whole tuple has validated).
			if want == KindFloat && v.Kind() == KindInt {
				continue
			}
			return fmt.Errorf("relation %s: attribute %s wants %s, got %s",
				r.Name, r.Schema.Attr(i).Name, want, v.Kind())
		}
	}
	for i, v := range t {
		if !v.IsNull() && v.Kind() == KindInt && r.Schema.Attr(i).Kind == KindFloat {
			t[i] = Float(float64(v.IntVal()))
		}
	}
	return nil
}

// MustInsert is Insert that panics on error, for generators and tests.
func (r *Relation) MustInsert(t Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuple returns the i-th tuple (not a copy).
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Tuples returns the underlying tuple slice. Callers must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Clone deep-copies the relation (schema shared, tuples copied).
func (r *Relation) Clone() *Relation {
	out := New(r.Name, r.Schema)
	out.tuples = make([]Tuple, len(r.tuples))
	for i, t := range r.tuples {
		out.tuples[i] = t.Clone()
	}
	return out
}

func (r *Relation) invalidateIndexes() {
	// The common case during bulk loading: no index has ever been built, so
	// there is nothing to invalidate and no reason to touch the mutex.
	if !r.indexed.Load() {
		return
	}
	r.mu.Lock()
	r.indexes = nil
	r.indexed.Store(false)
	r.mu.Unlock()
}

// index returns (building if needed) the hash index for the named attribute.
func (r *Relation) index(attr string) map[string][]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.indexes == nil {
		r.indexes = make(map[string]map[string][]int)
		r.indexed.Store(true)
	}
	if idx, ok := r.indexes[attr]; ok {
		return idx
	}
	col, ok := r.Schema.Index(attr)
	if !ok {
		return nil
	}
	idx := make(map[string][]int)
	for i, t := range r.tuples {
		k := t[col].Key()
		idx[k] = append(idx[k], i)
	}
	r.indexes[attr] = idx
	return idx
}

// Select returns the tuples satisfying the query's predicates, driven by the
// smallest applicable index posting list. The returned slice aliases the
// relation's tuples: callers may read it freely but must not mutate the
// tuples, and anything that outlives the relation's read phase (caches,
// sampled worlds, wire transfers) must deep-copy via Tuple.Clone first.
func (r *Relation) Select(q Query) []Tuple {
	return r.Scan(q).Collect()
}

// Count returns the number of tuples satisfying the query without
// materializing them.
func (r *Relation) Count(q Query) int {
	return r.Scan(q).Count()
}

// Scan streams the tuples satisfying q, in tuple-position order — the lazy
// form of Select, and the root of every operator pipeline over this
// relation. All equality and is-null predicates are probed against their
// hash indexes and the smallest posting list drives the scan — a rewrite
// binding several determining attributes pays for the rarest one, not the
// first one written. Queries with no index-drivable predicate fall back to
// a full scan. Posting lists hold positions in insertion order, so the
// drive choice never changes the output order. The drive predicate itself
// is satisfied by construction of its posting list and is not re-evaluated
// per tuple.
//
// Yielded tuples alias the relation's store: hold one past the yield only
// via Tuple.Clone (or pipe through Cloned).
func (r *Relation) Scan(q Query) TupleSeq {
	return func(yield func(Tuple) bool) {
		driven := false
		driveIdx := -1 // index into q.Preds of the drive predicate
		var drive []int
		for pi, p := range q.Preds {
			key, mode := r.probeKey(p)
			if mode == probeNone {
				continue
			}
			if mode == probeEmpty {
				// The predicate provably matches no tuple (e.g. a string
				// constant against an int column): the conjunction is empty.
				return
			}
			idx := r.index(p.Attr)
			if idx == nil {
				continue
			}
			list := idx[key]
			if !driven || len(list) < len(drive) {
				driven, drive, driveIdx = true, list, pi
			}
			if len(drive) == 0 {
				// Some predicate matches nothing: the conjunction is empty.
				return
			}
		}
		if driven {
			for _, pos := range drive {
				if t := r.tuples[pos]; q.matchesExcept(r.Schema, t, driveIdx) {
					if !yield(t) {
						return
					}
				}
			}
			return
		}
		for _, t := range r.tuples {
			if q.Matches(r.Schema, t) {
				if !yield(t) {
					return
				}
			}
		}
	}
}

// probeMode classifies what the index can do for one predicate.
type probeMode uint8

const (
	// probeNone: the predicate cannot drive an index scan; it is evaluated
	// per tuple as usual.
	probeNone probeMode = iota
	// probeKeyed: the predicate maps to exactly one posting-list key, and
	// every tuple in that list satisfies the predicate by construction.
	probeKeyed
	// probeEmpty: the predicate provably matches no tuple; the whole
	// conjunction is empty.
	probeEmpty
)

// probeKey maps a predicate to its hash-index posting-list key. Keys are
// canonicalized to the column's kind: coerce stores every non-null value of
// a column at the schema kind, while Value.Key is kind-sensitive — probing
// a float column's index with an int constant's key would miss every tuple
// that Predicate.Matches accepts via cross-kind numeric equality, silently
// emptying the result. probeKeyed is returned only when posting-list
// membership implies the predicate holds, which is what lets Scan skip
// re-evaluating the drive predicate per tuple.
func (r *Relation) probeKey(p Predicate) (string, probeMode) {
	col, ok := r.Schema.Index(p.Attr)
	if !ok {
		return "", probeNone
	}
	switch p.Op {
	case OpIsNull:
		return Null().Key(), probeKeyed
	case OpEq:
		// Handled below.
	default:
		return "", probeNone
	}
	v := p.Value
	if v.IsNull() {
		// Equality against null matches nothing under SQL semantics — but
		// the null posting list is exactly the tuples Matches rejects, so
		// the index cannot drive; report provably-empty instead.
		return "", probeEmpty
	}
	want := r.Schema.Attr(col).Kind
	switch {
	case v.Kind() == want:
		return v.Key(), probeKeyed
	case want == KindFloat:
		// Int constants compare Equal to float columns via float64
		// conversion; the converted key matches exactly those tuples.
		if f, ok := v.Numeric(); ok {
			return Float(f).Key(), probeKeyed
		}
		return "", probeEmpty
	case want == KindInt && v.Kind() == KindFloat:
		// A float constant can equal an int column value only when it is
		// integral; beyond 2^53 several ints share one float64, so the
		// single-key probe would be incomplete — fall back to scanning.
		const maxExact = 1 << 53
		f := v.FloatVal()
		if f != float64(int64(f)) {
			return "", probeEmpty
		}
		if f >= maxExact || f <= -maxExact {
			return "", probeNone
		}
		return Int(int64(f)).Key(), probeKeyed
	default:
		// Cross-kind equality is defined only through numeric conversion;
		// any other kind mismatch matches no stored value.
		return "", probeEmpty
	}
}

// Aggregate evaluates q's aggregate over the tuples selected by q's
// predicates, folding the scan stream without materializing the selected
// set. It errors if q carries no aggregate.
func (r *Relation) Aggregate(q Query) (AggResult, error) {
	if q.Agg == nil {
		return AggResult{}, fmt.Errorf("relation %s: query %s has no aggregate", r.Name, q)
	}
	return q.Agg.Fold(r.Schema, r.Scan(q))
}

// DistinctOn returns the distinct value combinations over the named
// attributes among the given tuples, in first-appearance order. Tuples with
// a null on any of the attributes are skipped: a null determining-set value
// cannot seed a rewritten query. The returned tuples are fresh projections,
// never aliasing the inputs.
func DistinctOn(s *Schema, tuples []Tuple, attrs []string) []Tuple {
	return DistinctOnSeq(s, FromTuples(tuples), attrs).Collect()
}

// ProjectTuples projects each tuple onto the named attributes of schema s,
// in the given order. QPIAD internally projects the full attribute set and
// trims for the user at the end (Section 4 footnote); this is that trim.
func ProjectTuples(s *Schema, tuples []Tuple, attrs []string) ([]Tuple, *Schema, error) {
	seq, ps, err := ProjectSeq(s, FromTuples(tuples), attrs)
	if err != nil {
		return nil, nil, err
	}
	out := seq.Collect()
	if out == nil {
		// Preserve the historical contract: projection of an empty tuple set
		// is an empty (non-nil) slice.
		out = []Tuple{}
	}
	return out, ps, nil
}

// Sample returns a relation containing n tuples drawn uniformly without
// replacement using rng, deep-copied via Tuple.Clone: a sampled world
// mutated by eval or datagen (e.g. MakeIncomplete nulling attributes) must
// never write through to the source relation's tuples. If n >= Len, a full
// clone is returned.
func (r *Relation) Sample(n int, rng *rand.Rand) *Relation {
	out := New(r.Name+"_sample", r.Schema)
	if n >= len(r.tuples) {
		out.tuples = make([]Tuple, len(r.tuples))
		for i, t := range r.tuples {
			out.tuples[i] = t.Clone()
		}
		return out
	}
	perm := rng.Perm(len(r.tuples))[:n]
	out.tuples = make([]Tuple, 0, n)
	for _, i := range perm {
		out.tuples = append(out.tuples, r.tuples[i].Clone())
	}
	return out
}

// Domain returns the distinct non-null values of the named attribute in
// first-appearance order.
func (r *Relation) Domain(attr string) []Value {
	col, ok := r.Schema.Index(attr)
	if !ok {
		return nil
	}
	seen := make(map[string]bool)
	var out []Value
	for _, t := range r.tuples {
		v := t[col]
		if v.IsNull() {
			continue
		}
		k := v.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

// Stats summarizes one attribute's hash-index statistics — the cheap
// cardinality signals the query planner's greedy join ordering runs on
// (distinct-value counts bound join fan-out, posting-list sizes bound
// per-value match counts). Computed from the same hash index Scan probes,
// so asking for stats costs at most one index build.
type Stats struct {
	// Rows is the relation cardinality.
	Rows int
	// Distinct is the number of distinct non-null values of the attribute.
	Distinct int
	// Nulls is the number of tuples null on the attribute.
	Nulls int
	// MaxPosting is the largest non-null posting list — the worst-case
	// per-value join fan-out.
	MaxPosting int
}

// IndexStats returns the attribute's index statistics; ok is false when the
// attribute is not in the schema. Safe for concurrent use (the index build
// is mutex-guarded); every aggregate is order-independent, so the map
// iteration below cannot leak randomized order into the result.
func (r *Relation) IndexStats(attr string) (Stats, bool) {
	idx := r.index(attr)
	if idx == nil {
		return Stats{}, false
	}
	st := Stats{Rows: len(r.tuples)}
	nullKey := Null().Key()
	for k, list := range idx {
		if k == nullKey {
			st.Nulls = len(list)
			continue
		}
		st.Distinct++
		if len(list) > st.MaxPosting {
			st.MaxPosting = len(list)
		}
	}
	return st, true
}

// IndexCardinality returns the posting-list length for one attribute value:
// exactly how many stored tuples carry that value (nulls included when v is
// the null value). Zero when the attribute is unknown or the value absent.
func (r *Relation) IndexCardinality(attr string, v Value) int {
	idx := r.index(attr)
	if idx == nil {
		return 0
	}
	return len(idx[v.Key()])
}

// IncompleteFraction returns the fraction of tuples containing at least one
// null (the PerInc statistic of Section 5.4; also Table 1's first row).
func (r *Relation) IncompleteFraction() float64 {
	if len(r.tuples) == 0 {
		return 0
	}
	n := 0
	for _, t := range r.tuples {
		if !t.IsComplete() {
			n++
		}
	}
	return float64(n) / float64(len(r.tuples))
}

// NullFraction returns the fraction of tuples null on the named attribute.
func (r *Relation) NullFraction(attr string) float64 {
	col, ok := r.Schema.Index(attr)
	if !ok || len(r.tuples) == 0 {
		return 0
	}
	n := 0
	for _, t := range r.tuples {
		if t[col].IsNull() {
			n++
		}
	}
	return float64(n) / float64(len(r.tuples))
}
