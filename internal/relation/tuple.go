package relation

import "strings"

// Tuple is a row of values, positionally aligned with a Schema.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// IsComplete reports whether the tuple has no null values
// (Definition 1 in the paper).
func (t Tuple) IsComplete() bool {
	for _, v := range t {
		if v.IsNull() {
			return false
		}
	}
	return true
}

// NullCount returns the number of null values in the tuple.
func (t Tuple) NullCount() int {
	n := 0
	for _, v := range t {
		if v.IsNull() {
			n++
		}
	}
	return n
}

// NullAttrs returns the names of attributes on which the tuple is null.
func (t Tuple) NullAttrs(s *Schema) []string {
	var out []string
	for i, v := range t {
		if v.IsNull() {
			out = append(out, s.Attr(i).Name)
		}
	}
	return out
}

// NullCountOn returns how many of the named attributes are null in t.
// The paper ranks only tuples with zero or one null over the query
// constrained attributes; this is the counting primitive for that rule.
func (t Tuple) NullCountOn(s *Schema, names []string) int {
	n := 0
	for _, name := range names {
		if i, ok := s.Index(name); ok && t[i].IsNull() {
			n++
		}
	}
	return n
}

// Key returns a canonical encoding of the whole tuple, usable for duplicate
// detection. Nulls participate (null groups with null).
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// KeyOn returns a canonical encoding of the tuple restricted to the given
// attribute positions.
func (t Tuple) KeyOn(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(t[c].Key())
	}
	return b.String()
}

// IsCompletionOf reports whether complete tuple t belongs to the set of
// completions C(u) of (possibly incomplete) tuple u: t and u agree on every
// attribute where u is non-null (Definition 1).
func (t Tuple) IsCompletionOf(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range u {
		if u[i].IsNull() {
			continue
		}
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Equal reports whether two tuples are identical position-by-position,
// with null identical to null.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Identical(o[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple as "⟨v1, v2, ...⟩".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "⟨" + strings.Join(parts, ", ") + "⟩"
}
