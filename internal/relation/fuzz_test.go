package relation

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV reader never panics on arbitrary input, and
// that anything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"a:int,b:string\n1,x\n,\n",
		"a:float\n1.5\n\\N\n",
		"a\nplain\n\"quo\"\"ted\"\n",
		"a:bool,b:int\ntrue,3\nfalse,\\N\n",
		"", "a:banana\n1\n", "a:int\nnotanint\n",
		"a:string\n\"unterminated\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		rel, err := ReadCSV("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := rel.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted relation failed to write: %v", err)
		}
		again, err := ReadCSV("fuzz", &buf)
		if err != nil {
			t.Fatalf("round trip read failed: %v\ninput: %q", err, input)
		}
		if again.Len() != rel.Len() {
			t.Fatalf("round trip row count %d != %d", again.Len(), rel.Len())
		}
		for i := 0; i < rel.Len(); i++ {
			if !again.Tuple(i).Equal(rel.Tuple(i)) {
				t.Fatalf("round trip row %d: %v != %v", i, again.Tuple(i), rel.Tuple(i))
			}
		}
	})
}

// FuzzDecode asserts value decoding never panics and agrees with Encode.
func FuzzDecode(f *testing.F) {
	for _, s := range []string{"", `\N`, "abc", "-12", "3.5", "true", "1e308", "NaN"} {
		for k := 0; k <= 4; k++ {
			f.Add(uint8(k), s)
		}
	}
	f.Fuzz(func(t *testing.T, kind uint8, s string) {
		if kind > 4 {
			kind %= 5
		}
		v, err := Decode(Kind(kind), s)
		if err != nil {
			return
		}
		// Decoding the encoding yields an identical value.
		again, err := Decode(Kind(kind), v.Encode())
		if err != nil {
			t.Fatalf("re-decode of %q failed: %v", v.Encode(), err)
		}
		if !again.Identical(v) {
			// Known representational quirks: bools accept multiple
			// spellings (1/t/TRUE) that canonicalize, and NaN compares
			// unequal to itself by definition.
			if v.Kind() == KindBool && again.Kind() == KindBool && again.BoolVal() == v.BoolVal() {
				return
			}
			if v.Kind() == KindFloat && again.Kind() == KindFloat &&
				math.IsNaN(v.FloatVal()) && math.IsNaN(again.FloatVal()) {
				return
			}
			t.Fatalf("decode/encode mismatch: %v vs %v (input %q)", v, again, s)
		}
	})
}
