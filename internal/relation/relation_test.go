package relation

import (
	"bytes"
	"math/rand"
	"testing"
)

// paperFragment builds the Table 2 fragment of the Car database.
func paperFragment() *Relation {
	s := MustSchema(
		Attribute{"id", KindInt},
		Attribute{"make", KindString},
		Attribute{"model", KindString},
		Attribute{"year", KindInt},
		Attribute{"body_style", KindString},
	)
	r := New("cars", s)
	rows := []Tuple{
		{Int(1), String("Audi"), String("A4"), Int(2001), String("Convt")},
		{Int(2), String("BMW"), String("Z4"), Int(2002), String("Convt")},
		{Int(3), String("Porsche"), String("Boxster"), Int(2005), String("Convt")},
		{Int(4), String("BMW"), String("Z4"), Int(2003), Null()},
		{Int(5), String("Honda"), String("Civic"), Int(2004), Null()},
		{Int(6), String("Toyota"), String("Camry"), Int(2002), String("Sedan")},
	}
	for _, t := range rows {
		r.MustInsert(t)
	}
	return r
}

func TestInsertValidation(t *testing.T) {
	r := paperFragment()
	if err := r.Insert(Tuple{Int(7)}); err == nil {
		t.Error("arity mismatch should error")
	}
	if err := r.Insert(Tuple{String("x"), String("a"), String("b"), Int(1), Null()}); err == nil {
		t.Error("kind mismatch should error")
	}
	if err := r.Insert(Tuple{Null(), Null(), Null(), Null(), Null()}); err != nil {
		t.Errorf("all-null tuple should insert: %v", err)
	}
}

func TestIntCoercedIntoFloatColumn(t *testing.T) {
	s := MustSchema(Attribute{"price", KindFloat})
	r := New("r", s)
	if err := r.Insert(Tuple{Int(15000)}); err != nil {
		t.Fatal(err)
	}
	if got := r.Tuple(0)[0]; got.Kind() != KindFloat || got.FloatVal() != 15000 {
		t.Errorf("coercion failed: %v", got)
	}
}

func TestSelectCertainAnswers(t *testing.T) {
	r := paperFragment()
	// Paper's running example: σ(body_style=Convt) returns t1,t2,t3 — the
	// certain answers. Tuples 4,5 (null body_style) are possible answers
	// and must NOT be returned by plain selection.
	got := r.Select(NewQuery("cars", Eq("body_style", String("Convt"))))
	if len(got) != 3 {
		t.Fatalf("certain answers = %d, want 3", len(got))
	}
	for _, tu := range got {
		if tu[4].Str() != "Convt" {
			t.Errorf("non-Convt tuple in certain answers: %v", tu)
		}
	}
}

func TestSelectNullBinding(t *testing.T) {
	r := paperFragment()
	got := r.Select(NewQuery("cars", IsNull("body_style")))
	if len(got) != 2 {
		t.Fatalf("null-bound selection = %d, want 2", len(got))
	}
}

func TestSelectScanFallback(t *testing.T) {
	r := paperFragment()
	// Range-only query: no equality predicate, falls back to scan.
	got := r.Select(NewQuery("cars", Between("year", Int(2002), Int(2003))))
	if len(got) != 3 {
		t.Fatalf("range selection = %d, want 3", len(got))
	}
}

func TestSelectIndexConsistentWithScan(t *testing.T) {
	r := paperFragment()
	q := NewQuery("cars", Eq("make", String("BMW")))
	viaIndex := r.Select(q)
	var viaScan []Tuple
	for _, tu := range r.Tuples() {
		if q.Matches(r.Schema, tu) {
			viaScan = append(viaScan, tu)
		}
	}
	if len(viaIndex) != len(viaScan) {
		t.Fatalf("index %d vs scan %d", len(viaIndex), len(viaScan))
	}
}

func TestIndexInvalidationOnInsert(t *testing.T) {
	r := paperFragment()
	q := NewQuery("cars", Eq("make", String("BMW")))
	if n := r.Count(q); n != 2 {
		t.Fatalf("precondition: %d BMWs", n)
	}
	r.MustInsert(Tuple{Int(7), String("BMW"), String("M3"), Int(2004), String("Coupe")})
	if n := r.Count(q); n != 3 {
		t.Errorf("after insert: %d BMWs, want 3 (stale index?)", n)
	}
}

func TestSelectDrivesFromSmallestPostingList(t *testing.T) {
	r := paperFragment()
	// make=BMW has 2 tuples, model=Boxster has 1: the conjunction must be
	// driven from the Boxster list. Observable effect: the Porsche predicate's
	// index decides, and the (contradictory) conjunction is empty.
	got := r.Select(NewQuery("cars",
		Eq("make", String("BMW")),
		Eq("model", String("Boxster"))))
	if len(got) != 0 {
		t.Errorf("contradictory conjunction returned %d tuples", len(got))
	}
	// Consistent conjunction: both predicates indexed, either drive order
	// must give the same single tuple.
	got = r.Select(NewQuery("cars",
		Eq("make", String("BMW")),
		Eq("model", String("Z4")),
		Eq("body_style", String("Convt"))))
	if len(got) != 1 || got[0][0].IntVal() != 2 {
		t.Errorf("conjunction = %v, want tuple 2", got)
	}
}

func TestSelectEmptyPostingListShortCircuits(t *testing.T) {
	r := paperFragment()
	// A predicate matching nothing empties the conjunction regardless of the
	// other predicates.
	got := r.Select(NewQuery("cars",
		Eq("make", String("Ferrari")),
		Eq("body_style", String("Convt"))))
	if len(got) != 0 {
		t.Errorf("empty posting list should short-circuit, got %d tuples", len(got))
	}
}

func TestSelectMultiPredicatePreservesOrder(t *testing.T) {
	r := paperFragment()
	// Whatever posting list drives, output must stay in tuple-position order.
	got := r.Select(NewQuery("cars",
		Eq("make", String("BMW")),
		Eq("model", String("Z4"))))
	if len(got) != 2 {
		t.Fatalf("BMW Z4 count = %d, want 2", len(got))
	}
	if got[0][0].IntVal() != 2 || got[1][0].IntVal() != 4 {
		t.Errorf("tuples out of position order: ids %v, %v", got[0][0], got[1][0])
	}
}

func TestCountMatchesSelect(t *testing.T) {
	r := paperFragment()
	for _, q := range []Query{
		NewQuery("cars", Eq("body_style", String("Convt"))),
		NewQuery("cars", IsNull("body_style")),
		NewQuery("cars", Between("year", Int(2002), Int(2003))),
		NewQuery("cars", Eq("make", String("Ferrari"))),
		NewQuery("cars"),
	} {
		if got, want := r.Count(q), len(r.Select(q)); got != want {
			t.Errorf("Count(%v) = %d, Select len = %d", q, got, want)
		}
	}
}

func TestInsertAll(t *testing.T) {
	r := paperFragment()
	fresh := New("cars", r.Schema)
	if err := fresh.InsertAll(r.Tuples()); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != r.Len() {
		t.Fatalf("InsertAll loaded %d tuples, want %d", fresh.Len(), r.Len())
	}
	for i := range r.Tuples() {
		if !fresh.Tuple(i).Equal(r.Tuple(i)) {
			t.Errorf("row %d differs after InsertAll", i)
		}
	}
	// Queries over the bulk-loaded relation agree with the incrementally
	// loaded one.
	q := NewQuery("cars", Eq("make", String("BMW")))
	if fresh.Count(q) != r.Count(q) {
		t.Error("bulk-loaded relation answers queries differently")
	}
}

func TestInsertAllRollsBackOnBadTuple(t *testing.T) {
	r := New("cars", paperFragment().Schema)
	good := Tuple{Int(1), String("Audi"), String("A4"), Int(2001), String("Convt")}
	bad := Tuple{Int(2)} // arity mismatch
	if err := r.InsertAll([]Tuple{good, bad, good}); err == nil {
		t.Fatal("bad tuple should error")
	}
	if r.Len() != 0 {
		t.Errorf("InsertAll is atomic: a failed batch should leave the relation untouched, len = %d", r.Len())
	}
	// A failed batch atop existing tuples restores the prior state exactly.
	if err := r.Insert(good.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := r.InsertAll([]Tuple{good.Clone(), bad}); err == nil {
		t.Fatal("bad tuple should error")
	}
	if r.Len() != 1 || !r.Tuple(0).Equal(good) {
		t.Errorf("rollback should restore the pre-call state, len = %d", r.Len())
	}
}

func TestInsertAllInvalidatesIndexes(t *testing.T) {
	r := paperFragment()
	q := NewQuery("cars", Eq("make", String("BMW")))
	if n := r.Count(q); n != 2 {
		t.Fatalf("precondition: %d BMWs", n)
	}
	// Count built an index; InsertAll must invalidate it.
	extra := []Tuple{
		{Int(7), String("BMW"), String("M3"), Int(2004), String("Coupe")},
		{Int(8), String("BMW"), String("M5"), Int(2005), String("Sedan")},
	}
	if err := r.InsertAll(extra); err != nil {
		t.Fatal(err)
	}
	if n := r.Count(q); n != 4 {
		t.Errorf("after InsertAll: %d BMWs, want 4 (stale index?)", n)
	}
}

func TestDistinctOn(t *testing.T) {
	r := paperFragment()
	base := r.Select(NewQuery("cars", Eq("body_style", String("Convt"))))
	d := DistinctOn(r.Schema, base, []string{"model"})
	if len(d) != 3 {
		t.Fatalf("distinct models = %d, want 3 (A4, Z4, Boxster)", len(d))
	}
	// Tuples with null on the projection attrs are skipped.
	r2 := paperFragment()
	r2.MustInsert(Tuple{Int(7), String("Ford"), Null(), Int(2001), String("Convt")})
	base2 := r2.Select(NewQuery("cars", Eq("body_style", String("Convt"))))
	d2 := DistinctOn(r2.Schema, base2, []string{"model"})
	if len(d2) != 3 {
		t.Errorf("null determining value should be skipped, got %d", len(d2))
	}
	// Duplicate combination collapses: two Z4 rows.
	d3 := DistinctOn(r.Schema, r.Tuples(), []string{"model"})
	if len(d3) != 5 {
		t.Errorf("distinct over all = %d, want 5", len(d3))
	}
}

func TestAggregateEval(t *testing.T) {
	r := paperFragment()
	q := NewQuery("cars", Eq("body_style", String("Convt")))
	q.Agg = &Aggregate{Func: AggCount}
	res, err := r.Aggregate(q)
	if err != nil || res.Value != 3 {
		t.Errorf("Count(*) = %v, %v", res.Value, err)
	}
	q.Agg = &Aggregate{Func: AggSum, Attr: "year"}
	res, err = r.Aggregate(q)
	if err != nil || res.Value != 2001+2002+2005 {
		t.Errorf("Sum(year) = %v, %v", res.Value, err)
	}
	q.Agg = &Aggregate{Func: AggAvg, Attr: "year"}
	res, err = r.Aggregate(q)
	if err != nil || res.Value != (2001+2002+2005)/3.0 {
		t.Errorf("Avg(year) = %v, %v", res.Value, err)
	}
	q.Agg = &Aggregate{Func: AggMin, Attr: "year"}
	res, _ = r.Aggregate(q)
	if res.Value != 2001 {
		t.Errorf("Min(year) = %v", res.Value)
	}
	q.Agg = &Aggregate{Func: AggMax, Attr: "year"}
	res, _ = r.Aggregate(q)
	if res.Value != 2005 {
		t.Errorf("Max(year) = %v", res.Value)
	}
	if _, err := r.Aggregate(NewQuery("cars")); err == nil {
		t.Error("Aggregate without Agg should error")
	}
}

func TestAggregateSkipsNulls(t *testing.T) {
	s := MustSchema(Attribute{"x", KindInt})
	r := New("r", s)
	r.MustInsert(Tuple{Int(10)})
	r.MustInsert(Tuple{Null()})
	r.MustInsert(Tuple{Int(20)})
	q := NewQuery("r")
	q.Agg = &Aggregate{Func: AggCount, Attr: "x"}
	res, _ := r.Aggregate(q)
	if res.Value != 2 {
		t.Errorf("Count(x) = %v, want 2 (null skipped)", res.Value)
	}
	q.Agg = &Aggregate{Func: AggCount}
	res, _ = r.Aggregate(q)
	if res.Value != 3 {
		t.Errorf("Count(*) = %v, want 3", res.Value)
	}
	q.Agg = &Aggregate{Func: AggAvg, Attr: "x"}
	res, _ = r.Aggregate(q)
	if res.Value != 15 {
		t.Errorf("Avg(x) = %v, want 15", res.Value)
	}
}

func TestAggregateMinMaxString(t *testing.T) {
	r := paperFragment()
	q := NewQuery("cars")
	q.Agg = &Aggregate{Func: AggMin, Attr: "make"}
	res, err := r.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Extremum.Str() != "Audi" {
		t.Errorf("Min(make) = %v", res.Extremum)
	}
	q.Agg = &Aggregate{Func: AggSum, Attr: "make"}
	if _, err := r.Aggregate(q); err == nil {
		t.Error("Sum over strings should error")
	}
}

func TestDomain(t *testing.T) {
	r := paperFragment()
	d := r.Domain("body_style")
	if len(d) != 2 { // Convt, Sedan — null excluded
		t.Errorf("Domain(body_style) = %v", d)
	}
	if len(r.Domain("nope")) != 0 {
		t.Error("Domain of unknown attribute should be empty")
	}
}

func TestIncompleteAndNullFractions(t *testing.T) {
	r := paperFragment()
	if got := r.IncompleteFraction(); got != 2.0/6.0 {
		t.Errorf("IncompleteFraction = %v", got)
	}
	if got := r.NullFraction("body_style"); got != 2.0/6.0 {
		t.Errorf("NullFraction(body_style) = %v", got)
	}
	if got := r.NullFraction("make"); got != 0 {
		t.Errorf("NullFraction(make) = %v", got)
	}
	empty := New("e", carSchema())
	if empty.IncompleteFraction() != 0 || empty.NullFraction("make") != 0 {
		t.Error("empty relation fractions should be 0")
	}
}

func TestSample(t *testing.T) {
	r := paperFragment()
	rng := rand.New(rand.NewSource(1))
	s := r.Sample(3, rng)
	if s.Len() != 3 {
		t.Fatalf("Sample(3).Len = %d", s.Len())
	}
	// Sampled tuples exist in the original.
	for _, tu := range s.Tuples() {
		found := false
		for _, orig := range r.Tuples() {
			if tu.Equal(orig) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("sampled tuple %v not in original", tu)
		}
	}
	all := r.Sample(100, rng)
	if all.Len() != r.Len() {
		t.Errorf("oversample should clone: %d", all.Len())
	}
}

func TestClone(t *testing.T) {
	r := paperFragment()
	c := r.Clone()
	c.Tuple(0)[1] = String("Tesla")
	if r.Tuple(0)[1].Str() != "Audi" {
		t.Error("Clone should deep-copy tuples")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := paperFragment()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("cars", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema.Equal(r.Schema) {
		t.Fatalf("schema mismatch: %v vs %v", got.Schema, r.Schema)
	}
	if got.Len() != r.Len() {
		t.Fatalf("row count %d vs %d", got.Len(), r.Len())
	}
	for i := range r.Tuples() {
		if !got.Tuple(i).Equal(r.Tuple(i)) {
			t.Errorf("row %d: %v vs %v", i, got.Tuple(i), r.Tuple(i))
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", bytes.NewBufferString("a:int\nnotanint\n")); err == nil {
		t.Error("bad int should error")
	}
	if _, err := ReadCSV("x", bytes.NewBufferString("a:banana\n1\n")); err == nil {
		t.Error("bad kind should error")
	}
	if _, err := ReadCSV("x", bytes.NewBufferString("")); err == nil {
		t.Error("empty input should error")
	}
}

func TestCSVDefaultsToString(t *testing.T) {
	r, err := ReadCSV("x", bytes.NewBufferString("a,b:int\nhello,5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema.Attr(0).Kind != KindString {
		t.Error("untyped column should default to string")
	}
	if r.Tuple(0)[1].IntVal() != 5 {
		t.Error("typed column decode failed")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	r := paperFragment()
	path := t.TempDir() + "/cars.csv"
	if err := r.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV("cars", path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != r.Len() {
		t.Errorf("file round trip: %d rows, want %d", got.Len(), r.Len())
	}
}

func TestIndexStats(t *testing.T) {
	r := paperFragment()
	st, ok := r.IndexStats("body_style")
	if !ok {
		t.Fatal("body_style should have stats")
	}
	// Values: Convt ×3, Sedan ×1, null ×2.
	want := Stats{Rows: 6, Distinct: 2, Nulls: 2, MaxPosting: 3}
	if st != want {
		t.Errorf("IndexStats(body_style) = %+v, want %+v", st, want)
	}
	st, ok = r.IndexStats("model")
	if !ok {
		t.Fatal("model should have stats")
	}
	want = Stats{Rows: 6, Distinct: 5, Nulls: 0, MaxPosting: 2}
	if st != want {
		t.Errorf("IndexStats(model) = %+v, want %+v", st, want)
	}
	if _, ok := r.IndexStats("nope"); ok {
		t.Error("unknown attribute should report ok=false")
	}
}

func TestIndexCardinality(t *testing.T) {
	r := paperFragment()
	if got := r.IndexCardinality("model", String("Z4")); got != 2 {
		t.Errorf("IndexCardinality(model, Z4) = %d, want 2", got)
	}
	if got := r.IndexCardinality("body_style", Null()); got != 2 {
		t.Errorf("IndexCardinality(body_style, null) = %d, want 2", got)
	}
	if got := r.IndexCardinality("model", String("F150")); got != 0 {
		t.Errorf("absent value should report 0, got %d", got)
	}
	if got := r.IndexCardinality("nope", String("x")); got != 0 {
		t.Errorf("unknown attribute should report 0, got %d", got)
	}
}

func TestIndexStatsInvalidatedByInsert(t *testing.T) {
	r := paperFragment()
	before, _ := r.IndexStats("model")
	r.MustInsert(Tuple{Int(7), String("Ford"), String("F150"), Int(2003), Null()})
	after, _ := r.IndexStats("model")
	if after.Rows != before.Rows+1 || after.Distinct != before.Distinct+1 {
		t.Errorf("stats after insert = %+v (before %+v): index not rebuilt", after, before)
	}
}
