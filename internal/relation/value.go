// Package relation implements the relational substrate QPIAD mediates over:
// typed values with explicit nulls, schemas, tuples, in-memory relations,
// conjunctive selection predicates, aggregates, and CSV interchange.
//
// The package is deliberately self-contained (stdlib only) so that the
// mediator, the knowledge-mining layer, and the autonomous-source simulator
// all share one data model.
package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the value types supported by the engine. Null is a kind of
// its own so that a Value is always self-describing.
type Kind uint8

const (
	// KindNull marks a missing attribute value ("null" in the paper).
	KindNull Kind = iota
	// KindString is a categorical string value.
	KindString
	// KindInt is a 64-bit integer value.
	KindInt
	// KindFloat is a 64-bit floating point value.
	KindFloat
	// KindBool is a boolean value.
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind converts a kind name (as produced by Kind.String) back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "null":
		return KindNull, nil
	case "string", "str":
		return KindString, nil
	case "int", "integer":
		return KindInt, nil
	case "float", "double", "real":
		return KindFloat, nil
	case "bool", "boolean":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("relation: unknown kind %q", s)
	}
}

// Value is a single attribute value. The zero Value is null.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// Null returns the null value.
func Null() Value { return Value{} }

// String returns a string-kinded value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int returns an int-kinded value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a float-kinded value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool returns a bool-kinded value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload. It panics if v is not string-kinded.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("relation: Str on %s value", v.kind))
	}
	return v.s
}

// IntVal returns the int payload. It panics if v is not int-kinded.
func (v Value) IntVal() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("relation: IntVal on %s value", v.kind))
	}
	return v.i
}

// FloatVal returns the float payload. It panics if v is not float-kinded.
func (v Value) FloatVal() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("relation: FloatVal on %s value", v.kind))
	}
	return v.f
}

// BoolVal returns the bool payload. It panics if v is not bool-kinded.
func (v Value) BoolVal() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("relation: BoolVal on %s value", v.kind))
	}
	return v.b
}

// Numeric returns the value as a float64 for int and float kinds.
// The second result reports whether the conversion applied.
func (v Value) Numeric() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// Equal reports whether two values are identical in kind and payload.
// Following SQL semantics used throughout the paper, null is not equal to
// anything, including null.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	if v.kind != o.kind {
		// Allow int/float cross-kind numeric equality: selection constants
		// parsed from user input may be int while the column is float.
		a, aok := v.Numeric()
		b, bok := o.Numeric()
		return aok && bok && a == b
	}
	switch v.kind {
	case KindString:
		return v.s == o.s
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindBool:
		return v.b == o.b
	}
	return false
}

// Identical reports whether two values are exactly the same, treating null
// as identical to null. This is the notion used for grouping, indexing and
// duplicate elimination (where SQL also groups nulls together).
func (v Value) Identical(o Value) bool {
	if v.kind == KindNull && o.kind == KindNull {
		return true
	}
	return v.Equal(o)
}

// Compare orders two non-null values. It returns -1, 0 or +1 and ok=false
// when the values are not comparable (either is null, or kinds are
// incomparable).
func (v Value) Compare(o Value) (int, bool) {
	if v.kind == KindNull || o.kind == KindNull {
		return 0, false
	}
	if a, aok := v.Numeric(); aok {
		if b, bok := o.Numeric(); bok {
			switch {
			case a < b:
				return -1, true
			case a > b:
				return 1, true
			default:
				return 0, true
			}
		}
		return 0, false
	}
	if v.kind != o.kind {
		return 0, false
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s), true
	case KindBool:
		switch {
		case v.b == o.b:
			return 0, true
		case !v.b:
			return -1, true
		default:
			return 1, true
		}
	}
	return 0, false
}

// Key returns a canonical string encoding of the value usable as a map key.
// Distinct values have distinct keys and identical values identical keys.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindString:
		return "s" + v.s
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		return "f" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.b {
			return "bt"
		}
		return "bf"
	}
	return ""
}

// String renders the value for display. Null renders as "null".
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	}
	return "?"
}

// CSV field escape scheme. Null and the empty string both need non-empty
// encodings: encoding/csv silently skips blank lines, so a row whose only
// field were empty would vanish on read. A leading backslash marks the
// escapes; literal leading backslashes are doubled.
const (
	// NullToken is the CSV encoding of a null value (the MySQL convention).
	NullToken = `\N`
	// EmptyToken is the CSV encoding of the empty string.
	EmptyToken = `\E`
)

// Encode renders the value for CSV interchange: null as NullToken, the
// empty string as EmptyToken, a leading backslash doubled; everything else
// verbatim. Decode applies the inverse mapping.
func (v Value) Encode() string {
	if v.kind == KindNull {
		return NullToken
	}
	s := v.String()
	if v.kind == KindString {
		switch {
		case s == "":
			return EmptyToken
		case strings.HasPrefix(s, `\`):
			return `\` + s
		}
	}
	return s
}

// Decode parses s into a value of the given kind. NullToken decodes to
// null for every kind; for non-string kinds the empty string also decodes
// to null (tolerating hand-written CSVs). For string kinds, EmptyToken
// decodes to the empty string and a doubled leading backslash is stripped;
// other leading backslashes are taken literally (so hand-written fields
// stay stable under re-encoding).
func Decode(kind Kind, s string) (Value, error) {
	if s == NullToken {
		return Null(), nil
	}
	if s == "" && kind != KindString {
		return Null(), nil
	}
	switch kind {
	case KindString:
		switch {
		case s == EmptyToken:
			return String(""), nil
		case strings.HasPrefix(s, `\\`):
			return String(s[1:]), nil
		}
		return String(s), nil
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: decode int %q: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: decode float %q: %w", s, err)
		}
		return Float(f), nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null(), fmt.Errorf("relation: decode bool %q: %w", s, err)
		}
		return Bool(b), nil
	case KindNull:
		return Null(), nil
	default:
		return Null(), fmt.Errorf("relation: decode: unknown kind %v", kind)
	}
}
