// The runner side of the load harness: a bounded worker pool driving the
// generated mix at the server, in either loop discipline:
//
//   - closed loop: each worker issues its next request only after the
//     previous one completes — concurrency is the offered load, the
//     classic benchmark discipline. An optional per-worker token bucket
//     paces the loop below the completion rate.
//   - open loop: each worker fires on a fixed schedule (Rate req/s)
//     regardless of completions, and latency is measured from the
//     *intended* start time, so queueing delay the client itself induced
//     by falling behind schedule still lands in the histogram (the
//     standard mitigation for coordinated omission).
//
// Every worker records into its own latency.Hist shard; Run folds the
// shards after the pool drains, so the hot path is wait-free.
package loadgen

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qpiad/internal/breaker"
	"qpiad/internal/latency"
)

// Mode is the loop discipline.
type Mode string

const (
	// ModeClosed issues the next request after the previous completes.
	ModeClosed Mode = "closed"
	// ModeOpen issues on a fixed schedule independent of completions.
	ModeOpen Mode = "open"
)

// Config tunes a load run. Zero fields take the documented defaults.
type Config struct {
	// BaseURL of the target server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers is the pool size. Default 8.
	Workers int
	// Duration bounds the run's wall time. Default 2s.
	Duration time.Duration
	// MaxRequests optionally caps the total issued requests across all
	// workers; 0 means no cap (the Duration alone ends the run).
	MaxRequests int64
	// Mode is the loop discipline. Default ModeClosed.
	Mode Mode
	// Rate is the per-worker request rate in req/s. In open-loop mode it
	// is required (the schedule). In closed-loop mode 0 means unpaced;
	// a positive rate arms the per-worker token bucket.
	Rate float64
	// Burst is the token-bucket capacity in requests. Default 1.
	Burst int
	// Seed makes the workload deterministic: worker w generates from
	// seed Seed + w. Default 1.
	Seed int64
	// Mix weighs the query classes; the zero value takes DefaultMix.
	Mix Mix
	// SLO is the per-request latency objective; completions slower than
	// this count as violations. Default 250ms.
	SLO time.Duration
	// ShedBackoff caps how long a worker honors a shed response's
	// retry_after_ms hint before retrying. Default 1s.
	ShedBackoff time.Duration
	// Client is the HTTP client. Default: a dedicated client with a
	// connection pool sized for the worker count.
	Client *http.Client
	// Clock injects time for all latency measurement. nil means the wall
	// clock.
	Clock breaker.Clock
}

func (c Config) withDefaults() (Config, error) {
	if c.BaseURL == "" {
		return c, errors.New("loadgen: BaseURL is required")
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Mode == "" {
		c.Mode = ModeClosed
	}
	if c.Mode != ModeClosed && c.Mode != ModeOpen {
		return c, fmt.Errorf("loadgen: unknown mode %q", c.Mode)
	}
	if c.Mode == ModeOpen && c.Rate <= 0 {
		return c, errors.New("loadgen: open-loop mode requires a positive Rate")
	}
	if c.Burst <= 0 {
		c.Burst = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SLO <= 0 {
		c.SLO = 250 * time.Millisecond
	}
	if c.ShedBackoff <= 0 {
		c.ShedBackoff = time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        c.Workers * 2,
			MaxIdleConnsPerHost: c.Workers * 2,
		}}
	}
	if c.Clock == nil {
		// Assigned as a value, never called here (the breaker Clock idiom).
		c.Clock = time.Now
	}
	return c, nil
}

// ClassCount is one mix class's tally in the report.
type ClassCount struct {
	Class Class `json:"class"`
	Count int64 `json:"count"`
}

// Report is the folded outcome of a load run.
type Report struct {
	Mode    Mode  `json:"mode"`
	Workers int   `json:"workers"`
	Seed    int64 `json:"seed"`
	// ElapsedMs is the measured run length.
	ElapsedMs int64 `json:"elapsed_ms"`

	// Issued = OK + Shed + Errors + Aborted (aborted: in flight when the
	// run's deadline cancelled them; they carry no latency signal).
	Issued  int64 `json:"issued"`
	OK      int64 `json:"ok"`
	Shed    int64 `json:"shed"`
	Errors  int64 `json:"errors"`
	Aborted int64 `json:"aborted"`

	// Throughput is goodput: OK completions per second of elapsed time.
	Throughput float64 `json:"throughput_rps"`
	// ShedRate is Shed / Issued.
	ShedRate float64 `json:"shed_rate"`

	// Latency digests OK completions only — shed responses are cheap by
	// design and would flatter the tail.
	Latency latency.Summary `json:"latency"`
	// TTFA digests time-to-first-answer over OK stream requests.
	TTFA latency.Summary `json:"ttfa"`

	// SLOMs is the objective; SLOViolations counts OK completions slower
	// than it; SLOViolationRate is violations / OK.
	SLOMs            int64   `json:"slo_ms"`
	SLOViolations    int64   `json:"slo_violations"`
	SLOViolationRate float64 `json:"slo_violation_rate"`

	// Classes tallies issued requests per mix class, in mix order.
	Classes []ClassCount `json:"classes"`
}

// worker is one pool member: a generator, a histogram shard and plain
// counters (single-writer; read only after the pool drains).
type worker struct {
	gen    *Gen
	lat    latency.Hist
	ttfa   latency.Hist
	issued int64
	ok     int64
	shed   int64
	errs   int64
	abort  int64
	sloV   int64
	byCls  map[Class]int64
}

// Run drives the configured load at the server until the duration elapses
// (or MaxRequests is reached) and returns the folded report. The given ctx
// cancels the run early.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	clock := cfg.Clock
	base := strings.TrimSuffix(cfg.BaseURL, "/")

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var issuedTotal atomic.Int64
	workers := make([]*worker, cfg.Workers)
	start := clock()
	var wg sync.WaitGroup
	for i := range workers {
		w := &worker{
			gen:   NewGen(cfg.Mix, cfg.Seed+int64(i)),
			byCls: make(map[Class]int64, 4),
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			runWorker(runCtx, cfg, base, clock, w, &issuedTotal, start)
		}()
	}
	wg.Wait()
	elapsed := clock().Sub(start)

	rep := &Report{
		Mode:    cfg.Mode,
		Workers: cfg.Workers,
		Seed:    cfg.Seed,
		SLOMs:   int64(cfg.SLO / time.Millisecond),
	}
	var lat, ttfa latency.Hist
	for _, w := range workers {
		rep.Issued += w.issued
		rep.OK += w.ok
		rep.Shed += w.shed
		rep.Errors += w.errs
		rep.Aborted += w.abort
		rep.SLOViolations += w.sloV
		lat.Merge(&w.lat)
		ttfa.Merge(&w.ttfa)
	}
	rep.ElapsedMs = int64(elapsed / time.Millisecond)
	if elapsed > 0 {
		rep.Throughput = float64(rep.OK) / elapsed.Seconds()
	}
	if rep.Issued > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Issued)
	}
	if rep.OK > 0 {
		rep.SLOViolationRate = float64(rep.SLOViolations) / float64(rep.OK)
	}
	rep.Latency = lat.Snapshot()
	rep.TTFA = ttfa.Snapshot()
	for _, c := range []Class{ClassPoint, ClassRange, ClassJoin, ClassStream} {
		var n int64
		for _, w := range workers {
			n += w.byCls[c]
		}
		rep.Classes = append(rep.Classes, ClassCount{Class: c, Count: n})
	}
	return rep, nil
}

// runWorker is one worker's loop under either discipline.
func runWorker(ctx context.Context, cfg Config, base string, clock breaker.Clock, w *worker, issuedTotal *atomic.Int64, start time.Time) {
	var tb *tokenBucket
	if cfg.Rate > 0 && cfg.Mode == ModeClosed {
		tb = newTokenBucket(cfg.Rate, cfg.Burst, clock)
	}
	var interval time.Duration
	next := start
	if cfg.Mode == ModeOpen {
		interval = time.Duration(float64(time.Second) / cfg.Rate)
	}
	for {
		if ctx.Err() != nil {
			return
		}
		if cfg.MaxRequests > 0 && issuedTotal.Add(1) > cfg.MaxRequests {
			return
		}
		measureFrom := clock()
		switch cfg.Mode {
		case ModeOpen:
			// Fire at the schedule; measure from the intended start so
			// self-induced backlog still counts against the tail.
			if d := next.Sub(clock()); d > 0 {
				if !sleep(ctx, d) {
					return
				}
			}
			measureFrom = next
			next = next.Add(interval)
		default:
			if tb != nil {
				if !tb.wait(ctx) {
					return
				}
				measureFrom = clock()
			}
		}
		req := w.gen.Next()
		w.issued++
		w.byCls[req.Class]++
		if backoff := doRequest(ctx, cfg, base, clock, w, req, measureFrom); backoff > 0 {
			if !sleep(ctx, backoff) {
				return
			}
		}
	}
}

// doRequest issues one request, classifies the outcome into the worker's
// shard, and returns a non-zero back-off when the server shed the request
// with a Retry-After hint the worker should honor.
func doRequest(ctx context.Context, cfg Config, base string, clock breaker.Clock, w *worker, req Request, measureFrom time.Time) time.Duration {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+req.Path, strings.NewReader(req.Body))
	if err != nil {
		w.errs++
		return 0
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			w.abort++
		} else {
			w.errs++
		}
		return 0
	}
	//lint:allow errdrop body close failures are unactionable; the request outcome is already recorded
	defer resp.Body.Close()

	if resp.StatusCode == http.StatusTooManyRequests {
		w.shed++
		return shedBackoff(resp.Body, cfg.ShedBackoff)
	}
	if resp.StatusCode != http.StatusOK {
		//lint:allow errdrop best-effort drain so the connection can be reused; the request already failed
		io.Copy(io.Discard, resp.Body)
		w.errs++
		return 0
	}

	ttfaD := time.Duration(-1)
	if req.Stream {
		br := bufio.NewReader(resp.Body)
		if _, err := br.ReadBytes('\n'); err != nil {
			if ctx.Err() != nil {
				w.abort++
			} else {
				w.errs++
			}
			return 0
		}
		// Stash TTFA now, file it only if the stream completes, so the
		// TTFA and latency histograms always cover the same requests.
		ttfaD = clock().Sub(measureFrom)
		if _, err := io.Copy(io.Discard, br); err != nil {
			if ctx.Err() != nil {
				w.abort++
			} else {
				w.errs++
			}
			return 0
		}
	} else if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		if ctx.Err() != nil {
			w.abort++
		} else {
			w.errs++
		}
		return 0
	}

	d := clock().Sub(measureFrom)
	w.ok++
	w.lat.Record(d)
	if ttfaD >= 0 {
		w.ttfa.Record(ttfaD)
	}
	if d > cfg.SLO {
		w.sloV++
	}
	return 0
}

// shedBackoff extracts the retry_after_ms hint from a 429 body, capped at
// the configured maximum (a saturated server must not park workers
// forever).
func shedBackoff(body io.Reader, cap time.Duration) time.Duration {
	var sb struct {
		RetryAfterMs int64 `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(body).Decode(&sb); err != nil || sb.RetryAfterMs <= 0 {
		return cap / 4
	}
	d := time.Duration(sb.RetryAfterMs) * time.Millisecond
	if d > cap {
		d = cap
	}
	return d
}

// sleep waits d or until ctx is done; it reports whether the full wait
// completed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// tokenBucket paces a closed-loop worker: capacity burst, refilled at rate
// tokens/second against the injected clock.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	clock  breaker.Clock
}

func newTokenBucket(rate float64, burst int, clock breaker.Clock) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: clock(), clock: clock}
}

// wait blocks until a token is available (or ctx is done) and takes it.
func (b *tokenBucket) wait(ctx context.Context) bool {
	for {
		now := b.clock()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		b.last = now
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		if b.tokens >= 1 {
			b.tokens--
			return true
		}
		need := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
		if !sleep(ctx, need) {
			return false
		}
	}
}
