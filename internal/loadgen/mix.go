// Package loadgen is the closed/open-loop load harness for the QPIAD HTTP
// server: a bounded worker pool issuing a seeded, deterministic query mix
// against /query, /query?stream=1 and /join, recording latency into
// per-worker lock-free histogram shards and folding them into a single
// p50/p95/p99 + SLO report.
//
// The generator side (this file) is pure: given a seed it produces the
// same request sequence on every run, so two benchmark arms (admission on
// vs off) see byte-identical workloads and their tail latencies are
// directly comparable.
package loadgen

import (
	"fmt"
	"math/rand"

	"qpiad/internal/datagen"
)

// Class is a query-mix class.
type Class string

const (
	// ClassPoint is a single-attribute equality selection — the workload
	// class the QPIAD rewriting pipeline is built around.
	ClassPoint Class = "point"
	// ClassRange is a range selection (price/year/mileage bounds).
	ClassRange Class = "range"
	// ClassJoin is a two-sided join via POST /join (cars self-join).
	ClassJoin Class = "join"
	// ClassStream is a point query consumed over the NDJSON stream, with
	// time-to-first-answer accounting.
	ClassStream Class = "stream"
)

// Mix weighs the query classes. Weights are relative (they need not sum
// to 1); a zero-value Mix takes DefaultMix.
type Mix struct {
	Point  float64 `json:"point"`
	Range  float64 `json:"range"`
	Join   float64 `json:"join"`
	Stream float64 `json:"stream"`
}

// DefaultMix is the standard SLO-benchmark blend: mostly cheap point
// lookups, a quarter ranges, a slice of streams, and a thin tail of
// expensive joins — enough to exercise every gated endpoint without the
// joins dominating service time.
var DefaultMix = Mix{Point: 0.45, Range: 0.25, Join: 0.05, Stream: 0.25}

// total returns the weight mass, substituting DefaultMix for a zero Mix.
func (m Mix) resolve() Mix {
	if m.Point+m.Range+m.Join+m.Stream <= 0 {
		return DefaultMix
	}
	return m
}

// Request is one generated load-harness request, ready to POST.
type Request struct {
	// Class the request was drawn from.
	Class Class
	// Path is the URL path + query ("/query", "/query?stream=1", "/join").
	Path string
	// Body is the JSON payload.
	Body string
	// Stream marks NDJSON consumption (TTFA is recorded for these).
	Stream bool
}

// Gen deterministically generates requests from a seeded mix. Not safe for
// concurrent use; the runner gives each worker its own Gen (seeded from
// the run seed and the worker index) so workloads stay deterministic under
// any interleaving.
type Gen struct {
	mix Mix
	cum [4]float64 // cumulative weights: point, range, join, stream
	rng *rand.Rand
}

// NewGen builds a generator for the mix with its own seeded source.
func NewGen(mix Mix, seed int64) *Gen {
	m := mix.resolve()
	g := &Gen{mix: m, rng: rand.New(rand.NewSource(seed))}
	g.cum[0] = m.Point
	g.cum[1] = g.cum[0] + m.Range
	g.cum[2] = g.cum[1] + m.Join
	g.cum[3] = g.cum[2] + m.Stream
	return g
}

// Next draws one request.
func (g *Gen) Next() Request {
	x := g.rng.Float64() * g.cum[3]
	switch {
	case x < g.cum[0]:
		return Request{Class: ClassPoint, Path: "/query", Body: g.pointBody(false)}
	case x < g.cum[1]:
		return Request{Class: ClassRange, Path: "/query", Body: g.rangeBody()}
	case x < g.cum[2]:
		return Request{Class: ClassJoin, Path: "/join", Body: g.joinBody()}
	default:
		return Request{Class: ClassStream, Path: "/query?stream=1", Body: g.pointBody(true), Stream: true}
	}
}

// bodyStyles and the value pools below come from the datagen cars world:
// selections over them have the wide selectivity spread (popular sedans,
// rare 911s) that makes the rewriting pipeline's work realistic.
var bodyStyles = []string{"Sedan", "Convt", "Coupe", "Wagon", "Truck", "SUV"}

// pointAttrs are the equality-selection attributes with their value pools.
func (g *Gen) pointPredicate() (attr, value string) {
	switch g.rng.Intn(3) {
	case 0:
		return "body_style", bodyStyles[g.rng.Intn(len(bodyStyles))]
	case 1:
		m := datagen.CarModels[g.rng.Intn(len(datagen.CarModels))]
		return "make", m.Make
	default:
		m := datagen.CarModels[g.rng.Intn(len(datagen.CarModels))]
		return "model", m.Model
	}
}

func (g *Gen) pointBody(stream bool) string {
	attr, value := g.pointPredicate()
	sql := fmt.Sprintf("SELECT * FROM cars WHERE %s = '%s'", attr, value)
	if stream {
		return fmt.Sprintf(`{"sql": %q, "no_cache": true, "top_n": %d}`, sql, 5+g.rng.Intn(20))
	}
	return fmt.Sprintf(`{"sql": %q, "no_cache": true}`, sql)
}

func (g *Gen) rangeBody() string {
	var sql string
	switch g.rng.Intn(3) {
	case 0:
		lo := 10000 + 500*int64(g.rng.Intn(40)) // 10k–29.5k
		sql = fmt.Sprintf("SELECT * FROM cars WHERE price BETWEEN %d AND %d", lo, lo+8000)
	case 1:
		y := 1996 + g.rng.Intn(8)
		sql = fmt.Sprintf("SELECT * FROM cars WHERE year >= %d AND year <= %d", y, y+2)
	default:
		m := 20000 + 5000*int64(g.rng.Intn(15))
		sql = fmt.Sprintf("SELECT * FROM cars WHERE mileage < %d", m)
	}
	return fmt.Sprintf(`{"sql": %q, "no_cache": true}`, sql)
}

func (g *Gen) joinBody() string {
	// A cars self-join on model: each side narrows by a different
	// attribute so the pair list stays small but non-trivial.
	style := bodyStyles[g.rng.Intn(len(bodyStyles))]
	y := 1998 + g.rng.Intn(6)
	left := fmt.Sprintf("SELECT * FROM cars WHERE body_style = '%s'", style)
	right := fmt.Sprintf("SELECT * FROM cars WHERE year = %d", y)
	return fmt.Sprintf(`{"left_sql": %q, "right_sql": %q, "on": ["model", "model"], "k": 5}`, left, right)
}
