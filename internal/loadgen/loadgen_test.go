package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qpiad/internal/afd"
	"qpiad/internal/core"
	"qpiad/internal/datagen"
	"qpiad/internal/httpapi"
	"qpiad/internal/nbc"
	"qpiad/internal/source"
)

// loadTarget stands up a small mediator behind the HTTP API with the given
// admission config.
func loadTarget(t *testing.T, acfg httpapi.AdmissionConfig) *httptest.Server {
	t.Helper()
	gd := datagen.Cars(1500, 21)
	ed, _ := datagen.MakeIncomplete(gd, 0.10, 22)
	src := source.New("cars", ed, source.Capabilities{})
	smpl := ed.Sample(300, rand.New(rand.NewSource(23)))
	k, err := core.MineKnowledge("cars", smpl,
		float64(ed.Len())/float64(smpl.Len()), smpl.IncompleteFraction(),
		core.KnowledgeConfig{AFD: afd.Config{MinSupport: 5}, Predictor: nbc.PredictorConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	med := core.New(core.Config{Alpha: 0, K: 5})
	med.Register(src, k)
	srv := httptest.NewServer(httpapi.New(med, httpapi.WithAdmission(acfg)))
	t.Cleanup(srv.Close)
	return srv
}

func TestClosedLoopRun(t *testing.T) {
	srv := loadTarget(t, httpapi.AdmissionConfig{MaxInFlight: 32})
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Workers:  4,
		Duration: 400 * time.Millisecond,
		Seed:     9,
		SLO:      5 * time.Second, // generous: this test is about accounting
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatal("no successful completions")
	}
	if got := rep.OK + rep.Shed + rep.Errors + rep.Aborted; got != rep.Issued {
		t.Errorf("conservation: ok+shed+errors+aborted = %d, issued = %d", got, rep.Issued)
	}
	if rep.Errors != 0 {
		t.Errorf("unexpected errors: %d (mix must generate only valid requests)", rep.Errors)
	}
	if rep.Latency.Count != rep.OK {
		t.Errorf("latency count %d != ok %d", rep.Latency.Count, rep.OK)
	}
	if rep.Latency.P50Micros == 0 || rep.Latency.P99Micros < rep.Latency.P50Micros {
		t.Errorf("implausible percentiles: %+v", rep.Latency)
	}
	if rep.Throughput <= 0 || rep.ElapsedMs < 350 {
		t.Errorf("throughput %.1f rps over %dms", rep.Throughput, rep.ElapsedMs)
	}
	if rep.SLOViolations != 0 {
		t.Errorf("SLO of 5s violated %d times in a local run", rep.SLOViolations)
	}
	var classTotal int64
	for _, c := range rep.Classes {
		classTotal += c.Count
	}
	if classTotal != rep.Issued {
		t.Errorf("class tallies sum to %d, issued %d", classTotal, rep.Issued)
	}
}

func TestStreamTTFARecorded(t *testing.T) {
	srv := loadTarget(t, httpapi.AdmissionConfig{MaxInFlight: 32})
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Workers:  2,
		Duration: 300 * time.Millisecond,
		Mix:      Mix{Stream: 1},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatal("no stream completions")
	}
	if rep.TTFA.Count != rep.OK {
		t.Errorf("ttfa count %d != ok %d", rep.TTFA.Count, rep.OK)
	}
	// First answer can't arrive after the full response finished.
	if rep.TTFA.P50Micros > rep.Latency.P99Micros {
		t.Errorf("ttfa p50 %dµs above completion p99 %dµs", rep.TTFA.P50Micros, rep.Latency.P99Micros)
	}
}

func TestShedAccountingAndBackoff(t *testing.T) {
	// One slot, no queue, modest retry hint: a 6-worker closed loop must
	// observe sheds, honor them, and still finish with conserved counts.
	srv := loadTarget(t, httpapi.AdmissionConfig{
		MaxInFlight: 1, MaxQueue: -1, RetryAfter: 20 * time.Millisecond,
	})
	rep, err := Run(context.Background(), Config{
		BaseURL:     srv.URL,
		Workers:     6,
		Duration:    500 * time.Millisecond,
		Seed:        2,
		ShedBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatal("no sheds observed against a one-slot server")
	}
	if rep.ShedRate <= 0 || rep.ShedRate > 1 {
		t.Errorf("shed rate %.3f out of range", rep.ShedRate)
	}
	if got := rep.OK + rep.Shed + rep.Errors + rep.Aborted; got != rep.Issued {
		t.Errorf("conservation: %d != issued %d", got, rep.Issued)
	}
	// Backoff honored: 6 workers × 500ms with a 20ms hint bounds the shed
	// count far below an unthrottled busy-loop's thousands.
	if rep.Shed > 300 {
		t.Errorf("%d sheds suggests the retry_after hint was ignored", rep.Shed)
	}
}

func TestTokenBucketPacesClosedLoop(t *testing.T) {
	srv := loadTarget(t, httpapi.AdmissionConfig{MaxInFlight: 32})
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Workers:  1,
		Duration: 500 * time.Millisecond,
		Rate:     20, // per worker: ~10 requests in 500ms + burst 1
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Issued < 3 {
		t.Errorf("paced run issued only %d requests", rep.Issued)
	}
	if rep.Issued > 16 {
		t.Errorf("token bucket leaked: %d requests at 20 rps in 500ms", rep.Issued)
	}
}

func TestOpenLoopHoldsSchedule(t *testing.T) {
	srv := loadTarget(t, httpapi.AdmissionConfig{MaxInFlight: 32})
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Workers:  2,
		Duration: 500 * time.Millisecond,
		Mode:     ModeOpen,
		Rate:     20,
		Seed:     4,
		Mix:      Mix{Point: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeOpen {
		t.Errorf("mode = %q", rep.Mode)
	}
	// 2 workers × 20 rps × 0.5s = ~20 intended sends; allow wide slack for
	// scheduler jitter but catch both a stuck and an unpaced loop.
	if rep.Issued < 8 || rep.Issued > 40 {
		t.Errorf("open loop issued %d requests, want ~20", rep.Issued)
	}
}

func TestMaxRequestsCapsRun(t *testing.T) {
	srv := loadTarget(t, httpapi.AdmissionConfig{MaxInFlight: 32})
	rep, err := Run(context.Background(), Config{
		BaseURL:     srv.URL,
		Workers:     4,
		Duration:    5 * time.Second,
		MaxRequests: 20,
		Seed:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Issued == 0 || rep.Issued > 20 {
		t.Errorf("issued %d, want 1..20", rep.Issued)
	}
	if rep.ElapsedMs >= 5000 {
		t.Errorf("capped run used the full duration (%dms)", rep.ElapsedMs)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("missing BaseURL accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Mode: ModeOpen}); err == nil {
		t.Error("open loop without a rate accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Mode: "wild"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestStreamServerDeathMidStream kills the connection after the first
// NDJSON line is flushed. The worker has already seen a 200 and a first
// answer, but the stream never completes — the request must be counted as
// an error (never OK), and its TTFA must not be filed: the TTFA histogram
// covers completed streams only.
func TestStreamServerDeathMidStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"type":"certain","values":{"make":"honda"}}`)
		w.(http.Flusher).Flush()
		// The server dies mid-stream: hijack the connection and cut it so
		// the client sees an unexpected EOF, not a clean end of body.
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		//lint:allow errdrop the abrupt close IS the fault being simulated
		conn.Close()
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:     srv.URL,
		Workers:     2,
		Duration:    5 * time.Second,
		MaxRequests: 10,
		Mix:         Mix{Stream: 1},
		Seed:        31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Issued == 0 {
		t.Fatal("no requests issued")
	}
	if rep.OK != 0 {
		t.Errorf("%d requests counted OK after mid-stream death", rep.OK)
	}
	if rep.Errors != rep.Issued-rep.Aborted {
		t.Errorf("errors %d, want every non-aborted request (%d issued, %d aborted)",
			rep.Errors, rep.Issued, rep.Aborted)
	}
	if rep.TTFA.Count != 0 {
		t.Errorf("TTFA filed for %d truncated streams", rep.TTFA.Count)
	}
	if rep.Latency.Count != 0 {
		t.Errorf("latency filed for %d failed requests", rep.Latency.Count)
	}
}
