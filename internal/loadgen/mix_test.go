package loadgen

import (
	"encoding/json"
	"strings"
	"testing"

	"qpiad/internal/sqlish"
)

func TestGenDeterministic(t *testing.T) {
	a, b := NewGen(DefaultMix, 42), NewGen(DefaultMix, 42)
	for i := 0; i < 200; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	c := NewGen(DefaultMix, 43)
	same := 0
	for i := 0; i < 200; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 200 {
		t.Error("different seeds produced an identical sequence")
	}
}

func TestGenMixProportions(t *testing.T) {
	g := NewGen(Mix{Point: 0.5, Range: 0.3, Join: 0.1, Stream: 0.1}, 7)
	counts := map[Class]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[g.Next().Class]++
	}
	for cls, want := range map[Class]float64{ClassPoint: 0.5, ClassRange: 0.3, ClassJoin: 0.1, ClassStream: 0.1} {
		got := float64(counts[cls]) / n
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("%s: %.3f of draws, want ~%.2f", cls, got, want)
		}
	}
}

func TestGenSingleClassMix(t *testing.T) {
	g := NewGen(Mix{Join: 1}, 3)
	for i := 0; i < 50; i++ {
		if r := g.Next(); r.Class != ClassJoin || r.Path != "/join" {
			t.Fatalf("pure-join mix produced %+v", r)
		}
	}
}

// TestGeneratedQueriesParse feeds every generated SQL through the real
// parser: the harness must never waste a benchmark run on 400s.
func TestGeneratedQueriesParse(t *testing.T) {
	g := NewGen(DefaultMix, 11)
	for i := 0; i < 500; i++ {
		r := g.Next()
		switch r.Class {
		case ClassJoin:
			var jb struct {
				LeftSQL  string    `json:"left_sql"`
				RightSQL string    `json:"right_sql"`
				On       [2]string `json:"on"`
			}
			if err := json.Unmarshal([]byte(r.Body), &jb); err != nil {
				t.Fatalf("join body not JSON: %v (%s)", err, r.Body)
			}
			for _, sql := range []string{jb.LeftSQL, jb.RightSQL} {
				if _, err := sqlish.Parse(sql); err != nil {
					t.Errorf("join side does not parse: %v (%s)", err, sql)
				}
			}
			if jb.On[0] == "" || jb.On[1] == "" {
				t.Errorf("join body missing on pair: %s", r.Body)
			}
		default:
			var qb struct {
				SQL string `json:"sql"`
			}
			if err := json.Unmarshal([]byte(r.Body), &qb); err != nil {
				t.Fatalf("query body not JSON: %v (%s)", err, r.Body)
			}
			if _, err := sqlish.Parse(qb.SQL); err != nil {
				t.Errorf("generated SQL does not parse: %v (%s)", err, qb.SQL)
			}
		}
		if r.Stream != (r.Class == ClassStream) {
			t.Errorf("stream flag mismatch: %+v", r)
		}
		if r.Stream && !strings.Contains(r.Path, "stream=1") {
			t.Errorf("stream request not routed to the stream path: %+v", r)
		}
	}
}

func TestZeroMixFallsBackToDefault(t *testing.T) {
	g := NewGen(Mix{}, 5)
	counts := map[Class]int{}
	for i := 0; i < 1000; i++ {
		counts[g.Next().Class]++
	}
	for _, cls := range []Class{ClassPoint, ClassRange, ClassJoin, ClassStream} {
		if counts[cls] == 0 {
			t.Errorf("default mix never drew %s", cls)
		}
	}
}
