package latency

import (
	"sync"
	"testing"
	"time"
)

func TestEmptyHist(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Sum() != 0 || h.Percentile(0.99) != 0 || h.Mean() != 0 {
		t.Errorf("zero histogram not empty: count=%d sum=%v p99=%v", h.Count(), h.Sum(), h.Percentile(0.99))
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P99Micros != 0 {
		t.Errorf("zero snapshot = %+v", s)
	}
}

func TestBucketBoundsMatchSourceHistogram(t *testing.T) {
	// The bounds mirror internal/source.LatencyStats so server-side and
	// mediator-side percentiles compare bucket for bucket.
	if got := BucketBound(0); got != time.Microsecond {
		t.Errorf("BucketBound(0) = %v", got)
	}
	if got := BucketBound(10); got != time.Microsecond<<10 {
		t.Errorf("BucketBound(10) = %v", got)
	}
	if got := BucketBound(buckets - 1); got != time.Duration(1<<63-1) {
		t.Errorf("overflow bound = %v", got)
	}
}

func TestPercentileOverEstimatesByAtMostOneBucket(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Record(2 * time.Millisecond)
	}
	p := h.Percentile(0.99)
	if p < 2*time.Millisecond {
		t.Errorf("p99 %v under-estimates the observation", p)
	}
	if p > 4*time.Millisecond { // 2ms lands in the (1ms, 2.048ms] bucket
		t.Errorf("p99 %v over-estimates by more than one bucket", p)
	}
}

func TestPercentileOrdering(t *testing.T) {
	var h Hist
	// 90 fast, 8 medium, 2 slow: p50 fast, p95 medium, p99 slow.
	for i := 0; i < 90; i++ {
		h.Record(100 * time.Microsecond)
	}
	for i := 0; i < 8; i++ {
		h.Record(10 * time.Millisecond)
	}
	h.Record(time.Second)
	h.Record(time.Second)
	p50, p95, p99 := h.Percentile(0.50), h.Percentile(0.95), h.Percentile(0.99)
	if !(p50 < p95 && p95 < p99) {
		t.Errorf("percentiles not ordered: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if p50 > time.Millisecond {
		t.Errorf("p50 %v should be in the fast band", p50)
	}
	if p99 < 500*time.Millisecond {
		t.Errorf("p99 %v should see the slow outlier", p99)
	}
}

func TestNegativeDurationClampsToZero(t *testing.T) {
	var h Hist
	h.Record(-time.Second)
	if h.Sum() != 0 || h.Count() != 1 {
		t.Errorf("negative observation: count=%d sum=%v", h.Count(), h.Sum())
	}
}

// TestMergeMatchesUnion proves merge correctness: recording a set of
// observations split across shards and merging must produce exactly the
// histogram of recording them all into one.
func TestMergeMatchesUnion(t *testing.T) {
	durations := make([]time.Duration, 0, 300)
	for i := 0; i < 300; i++ {
		durations = append(durations, time.Duration(1+i*i)*time.Microsecond)
	}
	var whole Hist
	for _, d := range durations {
		whole.Record(d)
	}
	shards := make([]Hist, 7)
	for i, d := range durations {
		shards[i%len(shards)].Record(d)
	}
	var merged Hist
	for i := range shards {
		merged.Merge(&shards[i])
	}
	merged.Merge(nil) // no-op

	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() {
		t.Fatalf("merged count/sum = %d/%v, want %d/%v", merged.Count(), merged.Sum(), whole.Count(), whole.Sum())
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		if got, want := merged.Percentile(p), whole.Percentile(p); got != want {
			t.Errorf("P%.2f: merged %v, whole %v", p, got, want)
		}
	}
}

// TestConcurrentRecordingAndMerge drives shards from concurrent workers
// (with reads racing the writes) and checks the merged histogram against a
// sequential reference. Run under -race this also proves lock-freedom is
// data-race-free.
func TestConcurrentRecordingAndMerge(t *testing.T) {
	const workers, perWorker = 8, 2000
	shards := make([]Hist, workers)
	stop := make(chan struct{})
	// A racing reader: merges and snapshots taken mid-recording must never
	// tear a counter or panic.
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var scratch Hist
			for i := range shards {
				scratch.Merge(&shards[i])
			}
			_ = scratch.Snapshot()
		}
	}()
	var writerWg sync.WaitGroup
	for w := 0; w < workers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < perWorker; i++ {
				shards[w].Record(time.Duration((w*perWorker+i)%5000) * time.Microsecond)
			}
		}(w)
	}
	writerWg.Wait()
	close(stop)
	readerWg.Wait()

	var merged Hist
	for i := range shards {
		merged.Merge(&shards[i])
	}
	var ref Hist
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			ref.Record(time.Duration((w*perWorker+i)%5000) * time.Microsecond)
		}
	}
	if merged.Count() != ref.Count() || merged.Sum() != ref.Sum() {
		t.Fatalf("merged count/sum = %d/%v, want %d/%v", merged.Count(), merged.Sum(), ref.Count(), ref.Sum())
	}
	for _, p := range []float64{0.5, 0.95, 0.99} {
		if got, want := merged.Percentile(p), ref.Percentile(p); got != want {
			t.Errorf("P%v: merged %v, reference %v", p, got, want)
		}
	}
}
