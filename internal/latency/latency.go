// Package latency provides a lock-free exponential-bucket latency
// histogram shared by the server side (per-endpoint service-time tracking
// in internal/httpapi) and the client side (per-worker recording shards in
// internal/loadgen).
//
// The design goals, in order:
//
//   - Recording must be wait-free and allocation-free: one atomic add on
//     the bucket counter, one on the count, one on the sum. A load worker
//     or request handler on the hot path never takes a lock.
//   - Histograms must merge: the load generator records into one shard per
//     worker (no cross-worker cache-line contention) and folds the shards
//     into a single distribution at report time. Merging is a plain
//     bucket-wise sum, so merged percentiles equal the percentiles of the
//     union of observations up to bucket resolution.
//   - Bucket bounds mirror internal/source.LatencyStats (bucket i holds
//     observations <= 1µs << i, last bucket overflows) so server-side and
//     mediator-side percentiles are comparable bucket for bucket.
//
// Reads (Percentile, Snapshot) are racy-by-design point-in-time views:
// they sum the buckets as they are, which is the standard monitoring
// trade-off — a snapshot taken during recording may be mid-update by one
// observation, never torn within a counter.
package latency

import (
	"sync/atomic"
	"time"
)

// buckets is the histogram resolution: bucket i holds observations with
// duration <= 1µs << i; the last bucket absorbs everything slower
// (about 8.4s and up).
const buckets = 24

// BucketBound returns the inclusive upper bound of histogram bucket i.
func BucketBound(i int) time.Duration {
	if i >= buckets-1 {
		return time.Duration(1<<63 - 1)
	}
	return time.Microsecond << i
}

// Hist is a lock-free exponential-bucket latency histogram. The zero value
// is ready to use. Record may be called from any number of goroutines
// concurrently with reads and merges.
type Hist struct {
	count atomic.Int64
	sum   atomic.Int64 // nanoseconds
	b     [buckets]atomic.Int64
}

// Record files one observation.
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.b[bucketOf(d)].Add(1)
}

// bucketOf returns the index of the bucket holding duration d.
func bucketOf(d time.Duration) int {
	for i := 0; i < buckets-1; i++ {
		if d <= BucketBound(i) {
			return i
		}
	}
	return buckets - 1
}

// Merge adds other's observations into h. Other may be recorded into
// concurrently; the merge folds in whatever each counter held when read.
func (h *Hist) Merge(other *Hist) {
	if other == nil {
		return
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for i := range other.b {
		if n := other.b[i].Load(); n != 0 {
			h.b[i].Add(n)
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Hist) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Percentile returns the upper bound of the bucket holding the p-th
// quantile (p in [0, 1]), 0 when nothing was observed. Bucket bounds make
// it an over-estimate by at most one bucket width; the overflow bucket
// reports the sum, the only honest bound available.
func (h *Hist) Percentile(p float64) time.Duration {
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(p * float64(count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < buckets; i++ {
		cum += h.b[i].Load()
		if cum >= target {
			if i == buckets-1 {
				return time.Duration(h.sum.Load())
			}
			return BucketBound(i)
		}
	}
	return time.Duration(h.sum.Load())
}

// Summary is a serializable point-in-time digest of a histogram: the
// shape every report and metrics payload exposes.
type Summary struct {
	Count     int64         `json:"count"`
	Sum       time.Duration `json:"-"`
	SumMicros int64         `json:"sum_micros"`
	P50Micros int64         `json:"p50_micros"`
	P95Micros int64         `json:"p95_micros"`
	P99Micros int64         `json:"p99_micros"`
	P50       time.Duration `json:"-"`
	P95       time.Duration `json:"-"`
	P99       time.Duration `json:"-"`
}

// Snapshot digests the histogram into a Summary.
func (h *Hist) Snapshot() Summary {
	s := Summary{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		P50:   h.Percentile(0.50),
		P95:   h.Percentile(0.95),
		P99:   h.Percentile(0.99),
	}
	s.SumMicros = int64(s.Sum / time.Microsecond)
	s.P50Micros = int64(s.P50 / time.Microsecond)
	s.P95Micros = int64(s.P95 / time.Microsecond)
	s.P99Micros = int64(s.P99 / time.Microsecond)
	return s
}

// Mean returns the average observation, 0 when empty.
func (h *Hist) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / c)
}
