package eval

import (
	"testing"

	"qpiad/internal/afd"
	"qpiad/internal/core"
	"qpiad/internal/datagen"
	"qpiad/internal/relation"
)

func testWorld(t *testing.T, nullAttr string) *World {
	t.Helper()
	w, err := NewWorld(WorldConfig{
		Name:           "cars",
		Dataset:        datagen.Cars,
		N:              4000,
		IncompleteFrac: 0.10,
		NullAttr:       nullAttr,
		TrainFrac:      0.10,
		Seed:           5,
		Mediator:       core.Config{Alpha: 0, K: 10},
		Knowledge:      core.KnowledgeConfig{AFD: afd.Config{MinSupport: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldProtocol(t *testing.T) {
	w := testWorld(t, "")
	if w.GD.Len() != 4000 {
		t.Fatalf("GD size %d", w.GD.Len())
	}
	if w.Train.Len()+w.Test.Len() != w.ED.Len() {
		t.Error("train+test must partition ED")
	}
	if w.Train.Len() != 400 {
		t.Errorf("train = %d, want 400", w.Train.Len())
	}
	if len(w.Hidden) == 0 {
		t.Fatal("no hidden cells")
	}
	// Source serves the test partition.
	rows, err := w.Src.Query(relation.NewQuery("cars"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != w.Test.Len() {
		t.Error("source must wrap the test partition")
	}
}

func TestWorldRelevance(t *testing.T) {
	w := testWorld(t, "body_style")
	q := relation.NewQuery("cars", relation.Eq("body_style", relation.String("Convt")))
	rs, err := w.Med.QuerySelect("cars", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Possible) == 0 {
		t.Fatal("expected possible answers")
	}
	flags := w.RelevanceFlags(rs.Possible, q)
	if len(flags) != len(rs.Possible) {
		t.Fatal("flag length mismatch")
	}
	hits := 0
	for _, f := range flags {
		if f {
			hits++
		}
	}
	// QPIAD's ranked answers should be mostly relevant.
	if frac := float64(hits) / float64(len(flags)); frac < 0.5 {
		t.Errorf("relevant fraction = %v", frac)
	}
	// Certain answers never judge relevant (no constrained null).
	for _, a := range rs.Certain {
		if w.IsRelevant(a, q) {
			t.Fatal("certain answer judged as relevant possible answer")
		}
	}
}

func TestRelevantPossibleCount(t *testing.T) {
	w := testWorld(t, "body_style")
	q := relation.NewQuery("cars", relation.Eq("body_style", relation.String("Convt")))
	want := 0
	col := w.Test.Schema.MustIndex("body_style")
	for _, tu := range w.Test.Tuples() {
		if !tu[col].IsNull() {
			continue
		}
		truth, ok := w.TruthOf(tu, "body_style")
		if ok && !truth.IsNull() && truth.Str() == "Convt" {
			want++
		}
	}
	if got := w.RelevantPossibleCount(q); got != want {
		t.Errorf("RelevantPossibleCount = %d, manual = %d", got, want)
	}
	if want == 0 {
		t.Fatal("fixture produced no relevant possible answers")
	}
}

func TestRelevantPossibleCountMultiPred(t *testing.T) {
	w := testWorld(t, "")
	q := relation.NewQuery("cars",
		relation.Eq("model", relation.String("Z4")),
		relation.Eq("body_style", relation.String("Convt")),
	)
	n := w.RelevantPossibleCount(q)
	// Manual: tuples null on exactly one of the two attrs with satisfying
	// truth, and the other attr satisfying visibly.
	want := 0
	mcol := w.Test.Schema.MustIndex("model")
	bcol := w.Test.Schema.MustIndex("body_style")
	for _, tu := range w.Test.Tuples() {
		mNull, bNull := tu[mcol].IsNull(), tu[bcol].IsNull()
		switch {
		case mNull && !bNull:
			truth, ok := w.TruthOf(tu, "model")
			if ok && truth.Str() == "Z4" && !tu[bcol].IsNull() && tu[bcol].Str() == "Convt" {
				want++
			}
		case bNull && !mNull:
			truth, ok := w.TruthOf(tu, "body_style")
			if ok && truth.Str() == "Convt" && tu[mcol].Str() == "Z4" {
				want++
			}
		}
	}
	if n != want {
		t.Errorf("multi-pred relevant count = %d, manual = %d", n, want)
	}
}

func TestTruthOf(t *testing.T) {
	w := testWorld(t, "body_style")
	col := w.Test.Schema.MustIndex("body_style")
	found := false
	for _, tu := range w.Test.Tuples() {
		if tu[col].IsNull() {
			if v, ok := w.TruthOf(tu, "body_style"); !ok || v.IsNull() {
				t.Fatal("nulled cell must have recorded truth")
			}
			found = true
		} else {
			if _, ok := w.TruthOf(tu, "body_style"); ok {
				t.Fatal("non-null cell must have no recorded truth")
			}
		}
	}
	if !found {
		t.Fatal("no nulled tuples in test partition")
	}
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(WorldConfig{}); err == nil {
		t.Error("missing dataset should error")
	}
	if _, err := NewWorld(WorldConfig{Dataset: datagen.Cars}); err == nil {
		t.Error("zero N should error")
	}
}
