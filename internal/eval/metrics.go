// Package eval provides the paper's evaluation protocol (Section 6.2) and
// metrics: the ground-truth / experimental-dataset construction, train/test
// splitting, relevance judgments against hidden values, precision-recall
// curves, and accumulated precision at K.
package eval

import "math"

// PRPoint is one point of a precision-recall curve.
type PRPoint struct {
	Precision float64
	Recall    float64
}

// PRCurve walks a ranked relevance list and emits the cumulative
// precision/recall point after each retrieved item. totalRelevant is the
// recall denominator (the number of relevant items in the database); when
// zero, recall is reported as 0 throughout.
func PRCurve(relevant []bool, totalRelevant int) []PRPoint {
	out := make([]PRPoint, len(relevant))
	hits := 0
	for i, r := range relevant {
		if r {
			hits++
		}
		p := float64(hits) / float64(i+1)
		rec := 0.0
		if totalRelevant > 0 {
			rec = float64(hits) / float64(totalRelevant)
		}
		out[i] = PRPoint{Precision: p, Recall: rec}
	}
	return out
}

// AccumulatedPrecision returns the precision after the Kth retrieved tuple
// for K = 1..upto. When fewer than upto items exist, the final precision is
// carried forward (the curve flattens, as in the paper's Figures 6-7).
func AccumulatedPrecision(relevant []bool, upto int) []float64 {
	out := make([]float64, upto)
	hits := 0
	last := 0.0
	for k := 0; k < upto; k++ {
		if k < len(relevant) {
			if relevant[k] {
				hits++
			}
			last = float64(hits) / float64(k+1)
		}
		out[k] = last
	}
	return out
}

// MeanCurves averages several equal-length curves pointwise (the paper's
// "Avg. of 10 Queries" plots).
func MeanCurves(curves [][]float64) []float64 {
	if len(curves) == 0 {
		return nil
	}
	n := len(curves[0])
	out := make([]float64, n)
	for _, c := range curves {
		for i := 0; i < n && i < len(c); i++ {
			out[i] += c[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(curves))
	}
	return out
}

// PrecisionRecall summarizes a full ranked list.
func PrecisionRecall(relevant []bool, totalRelevant int) (precision, recall float64) {
	hits := 0
	for _, r := range relevant {
		if r {
			hits++
		}
	}
	if len(relevant) > 0 {
		precision = float64(hits) / float64(len(relevant))
	}
	if totalRelevant > 0 {
		recall = float64(hits) / float64(totalRelevant)
	}
	return precision, recall
}

// TuplesToReachRecall returns, for each recall target, how many items of
// the ranked list must be consumed to reach it, scaled by tuplesPerItem
// (Figure 8 counts transferred tuples, not answers). A target that is never
// reached reports -1.
func TuplesToReachRecall(relevant []bool, totalRelevant int, targets []float64, transferred []int) []int {
	out := make([]int, len(targets))
	for i := range out {
		out[i] = -1
	}
	if totalRelevant == 0 {
		return out
	}
	hits := 0
	for i, r := range relevant {
		if r {
			hits++
		}
		rec := float64(hits) / float64(totalRelevant)
		cost := i + 1
		if transferred != nil {
			cost = transferred[i]
		}
		for j, tgt := range targets {
			if out[j] < 0 && rec >= tgt-1e-12 {
				out[j] = cost
			}
		}
	}
	return out
}

// AggAccuracy scores an estimated aggregate against the true value as
// 1 − |est − truth| / |truth| clamped to [0, 1]; a zero truth scores 1 only
// for an exactly-zero estimate.
func AggAccuracy(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 1
		}
		return 0
	}
	acc := 1 - math.Abs(est-truth)/math.Abs(truth)
	if acc < 0 {
		return 0
	}
	return acc
}

// FractionAtOrAbove computes, for each threshold, the fraction of values
// ≥ that threshold (the paper's Figure 12 CDF-style presentation).
func FractionAtOrAbove(values []float64, thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	if len(values) == 0 {
		return out
	}
	for j, th := range thresholds {
		n := 0
		for _, v := range values {
			if v >= th-1e-12 {
				n++
			}
		}
		out[j] = float64(n) / float64(len(values))
	}
	return out
}
