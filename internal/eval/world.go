package eval

import (
	"fmt"

	"qpiad/internal/core"
	"qpiad/internal/datagen"
	"qpiad/internal/relation"
	"qpiad/internal/source"
)

// WorldConfig describes one experimental setup.
type WorldConfig struct {
	// Name labels the world (and its source).
	Name string
	// Dataset generates the complete ground truth.
	Dataset func(n int, seed int64) *relation.Relation
	// N is the ground-truth cardinality.
	N int
	// IncompleteFrac is the fraction of tuples made incomplete (paper: 0.10).
	IncompleteFrac float64
	// NullAttr, when non-empty, confines nulls to one attribute; otherwise
	// the paper's random-attribute protocol applies.
	NullAttr string
	// TrainFrac is the training-sample fraction of ED (paper: 0.03–0.15).
	TrainFrac float64
	// Seed drives all randomness.
	Seed int64
	// Caps configures the simulated source's access profile.
	Caps source.Capabilities
	// Mediator configures rewriting/ranking (α, K).
	Mediator core.Config
	// Knowledge configures mining.
	Knowledge core.KnowledgeConfig
}

// World is a ready-to-run experimental setup: ground truth, incomplete
// test database behind an autonomous source, mined knowledge, and a
// mediator.
type World struct {
	Name   string
	GD     *relation.Relation
	ED     *relation.Relation
	Train  *relation.Relation
	Test   *relation.Relation
	Hidden map[int64]map[string]relation.Value
	Src    *source.Source
	Know   *core.Knowledge
	Med    *core.Mediator
	idCol  int
}

// NewWorld builds the Section 6.2 protocol: GD → (10% incomplete) ED →
// train/test split → source over test → knowledge mined from train.
func NewWorld(cfg WorldConfig) (*World, error) {
	if cfg.Dataset == nil || cfg.N <= 0 {
		return nil, fmt.Errorf("eval: WorldConfig needs Dataset and N")
	}
	if cfg.IncompleteFrac == 0 {
		cfg.IncompleteFrac = 0.10
	}
	if cfg.TrainFrac == 0 {
		cfg.TrainFrac = 0.10
	}
	gd := cfg.Dataset(cfg.N, cfg.Seed)
	var (
		ed     *relation.Relation
		hidden []datagen.Hidden
	)
	if cfg.NullAttr != "" {
		ed, hidden = datagen.MakeIncompleteAttr(gd, cfg.NullAttr, cfg.IncompleteFrac, cfg.Seed+1)
	} else {
		ed, hidden = datagen.MakeIncomplete(gd, cfg.IncompleteFrac, cfg.Seed+1)
	}
	train, test, err := datagen.Split(ed, cfg.TrainFrac, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	src := source.New(cfg.Name, test, cfg.Caps)
	ratio := float64(test.Len()) / float64(train.Len())
	know, err := core.MineKnowledge(cfg.Name, train, ratio, train.IncompleteFraction(), cfg.Knowledge)
	if err != nil {
		return nil, err
	}
	// Experiments account source traffic (queries issued, tuples
	// transferred, retries); a transparent answer cache would absorb repeat
	// queries and skew exactly those metrics, so worlds always run uncached.
	cfg.Mediator.NoCache = true
	cfg.Mediator.CacheSize = -1
	med := core.New(cfg.Mediator)
	med.Register(src, know)

	idCol := -1
	for _, name := range []string{"id", "cid"} {
		if i, ok := gd.Schema.Index(name); ok {
			idCol = i
			break
		}
	}
	if idCol < 0 {
		return nil, fmt.Errorf("eval: dataset %s lacks an id column", cfg.Name)
	}
	return &World{
		Name:   cfg.Name,
		GD:     gd,
		ED:     ed,
		Train:  train,
		Test:   test,
		Hidden: datagen.HiddenIndex(hidden),
		Src:    src,
		Know:   know,
		Med:    med,
		idCol:  idCol,
	}, nil
}

// ID extracts the id of a tuple in this world's schema.
func (w *World) ID(t relation.Tuple) int64 { return t[w.idCol].IntVal() }

// TruthOf returns the hidden ground-truth value of attr for the tuple, or
// ok=false if that cell was never nulled.
func (w *World) TruthOf(t relation.Tuple, attr string) (relation.Value, bool) {
	m, ok := w.Hidden[w.ID(t)]
	if !ok {
		return relation.Null(), false
	}
	v, ok := m[attr]
	return v, ok
}

// IsRelevant judges a possible answer: for every constrained attribute the
// tuple is null on, the hidden ground-truth value must satisfy the
// predicate. Tuples with no constrained null are not possible answers and
// judge false.
func (w *World) IsRelevant(ans core.Answer, q relation.Query) bool {
	anyNull := false
	for _, p := range q.Preds {
		col, ok := w.Test.Schema.Index(p.Attr)
		if !ok {
			return false
		}
		if !ans.Tuple[col].IsNull() {
			continue
		}
		anyNull = true
		truth, ok := w.TruthOf(ans.Tuple, p.Attr)
		if !ok {
			return false
		}
		probe := ans.Tuple.Clone()
		probe[col] = truth
		if !p.Matches(w.Test.Schema, probe) {
			return false
		}
	}
	return anyNull
}

// RelevanceFlags maps ranked answers to relevance booleans.
func (w *World) RelevanceFlags(answers []core.Answer, q relation.Query) []bool {
	out := make([]bool, len(answers))
	for i, a := range answers {
		out[i] = w.IsRelevant(a, q)
	}
	return out
}

// RelevantPossibleCount counts the relevant possible answers present in the
// test database: tuples null on ≥1 constrained attribute whose hidden
// values satisfy their predicates and whose visible constrained values
// satisfy theirs.
func (w *World) RelevantPossibleCount(q relation.Query) int {
	n := 0
	for _, t := range w.Test.Tuples() {
		anyNull := false
		ok := true
		for _, p := range q.Preds {
			col, has := w.Test.Schema.Index(p.Attr)
			if !has {
				ok = false
				break
			}
			if t[col].IsNull() {
				anyNull = true
				truth, has := w.TruthOf(t, p.Attr)
				if !has {
					ok = false
					break
				}
				probe := t.Clone()
				probe[col] = truth
				if !p.Matches(w.Test.Schema, probe) {
					ok = false
					break
				}
			} else if !p.Matches(w.Test.Schema, t) {
				// A predicate on a non-null attribute must hold outright.
				ok = false
				break
			}
		}
		if ok && anyNull {
			n++
		}
	}
	return n
}
