package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPRCurve(t *testing.T) {
	rel := []bool{true, false, true, true}
	pts := PRCurve(rel, 4)
	wantP := []float64{1, 0.5, 2.0 / 3, 0.75}
	wantR := []float64{0.25, 0.25, 0.5, 0.75}
	for i := range pts {
		if math.Abs(pts[i].Precision-wantP[i]) > 1e-12 || math.Abs(pts[i].Recall-wantR[i]) > 1e-12 {
			t.Errorf("point %d = %+v, want P=%v R=%v", i, pts[i], wantP[i], wantR[i])
		}
	}
	// Zero relevant denominator.
	pts = PRCurve(rel, 0)
	for _, p := range pts {
		if p.Recall != 0 {
			t.Error("recall must be 0 with no relevant items")
		}
	}
	if len(PRCurve(nil, 5)) != 0 {
		t.Error("empty list yields empty curve")
	}
}

// Property: recall is nondecreasing, precision stays in [0,1].
func TestPRCurveMonotoneRecall(t *testing.T) {
	f := func(bits []bool) bool {
		total := 0
		for _, b := range bits {
			if b {
				total++
			}
		}
		pts := PRCurve(bits, total)
		lastR := 0.0
		for _, p := range pts {
			if p.Recall < lastR-1e-12 || p.Precision < 0 || p.Precision > 1 {
				return false
			}
			lastR = p.Recall
		}
		// Final recall is 1 when any relevant items exist.
		if total > 0 && math.Abs(lastR-1) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccumulatedPrecision(t *testing.T) {
	rel := []bool{true, true, false}
	ap := AccumulatedPrecision(rel, 5)
	want := []float64{1, 1, 2.0 / 3, 2.0 / 3, 2.0 / 3} // carried forward
	for i := range want {
		if math.Abs(ap[i]-want[i]) > 1e-12 {
			t.Errorf("ap[%d] = %v, want %v", i, ap[i], want[i])
		}
	}
	if got := AccumulatedPrecision(nil, 3); got[0] != 0 || got[2] != 0 {
		t.Error("empty list carries zero")
	}
}

func TestMeanCurves(t *testing.T) {
	m := MeanCurves([][]float64{{1, 0}, {0, 1}})
	if m[0] != 0.5 || m[1] != 0.5 {
		t.Errorf("MeanCurves = %v", m)
	}
	if MeanCurves(nil) != nil {
		t.Error("no curves yields nil")
	}
}

func TestPrecisionRecall(t *testing.T) {
	p, r := PrecisionRecall([]bool{true, false, true}, 4)
	if math.Abs(p-2.0/3) > 1e-12 || math.Abs(r-0.5) > 1e-12 {
		t.Errorf("P=%v R=%v", p, r)
	}
	p, r = PrecisionRecall(nil, 0)
	if p != 0 || r != 0 {
		t.Error("empty should be 0,0")
	}
}

func TestTuplesToReachRecall(t *testing.T) {
	rel := []bool{true, false, true, true}
	targets := []float64{0.25, 0.5, 0.75, 1.0}
	got := TuplesToReachRecall(rel, 4, targets, nil)
	want := []int{1, 3, 4, -1} // 4 relevant total, only 3 found
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("target %v: %d, want %d", targets[i], got[i], want[i])
		}
	}
	// With transferred-tuple costs.
	transferred := []int{10, 25, 40, 60}
	got = TuplesToReachRecall(rel, 4, targets, transferred)
	want = []int{10, 40, 60, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cost target %v: %d, want %d", targets[i], got[i], want[i])
		}
	}
	if got := TuplesToReachRecall(rel, 0, targets, nil); got[0] != -1 {
		t.Error("zero relevant: all targets unreachable")
	}
}

func TestAggAccuracy(t *testing.T) {
	cases := []struct{ est, truth, want float64 }{
		{100, 100, 1},
		{90, 100, 0.9},
		{110, 100, 0.9},
		{0, 100, 0},
		{300, 100, 0}, // clamped
		{0, 0, 1},
		{5, 0, 0},
	}
	for _, c := range cases {
		if got := AggAccuracy(c.est, c.truth); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("AggAccuracy(%v,%v) = %v, want %v", c.est, c.truth, got, c.want)
		}
	}
}

func TestFractionAtOrAbove(t *testing.T) {
	vals := []float64{0.9, 0.95, 1.0, 1.0}
	ths := []float64{0.9, 0.95, 1.0}
	got := FractionAtOrAbove(vals, ths)
	want := []float64{1, 0.75, 0.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("threshold %v: %v, want %v", ths[i], got[i], want[i])
		}
	}
	if got := FractionAtOrAbove(nil, ths); got[0] != 0 {
		t.Error("no values: fractions are 0")
	}
}
