module qpiad

go 1.23
